"""Section 5.6 — PriSM over a DIP baseline (replacement-policy agnosticism).

PriSM's core-selection step layers on any replacement policy; the paper
demonstrates this with DIP (which lacks the stack property, so UCP cannot
use it). Quad-core, all ANTTs normalised to the unmanaged DIP cache.
Paper: PriSM-H over DIP gains 8.9%; TA-DIP lands about level with DIP;
both DIP variants beat LRU.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.experiments.common import Progress, compare_schemes, format_table
from repro.experiments.configs import machine
from repro.experiments.options import experiment_run
from repro.metrics import geomean
from repro.workloads.mixes import mixes_for_cores

__all__ = ["run", "format_result"]


@experiment_run
def run(
    instructions: Optional[int] = None,
    mixes: Optional[List[str]] = None,
    seed: int = 0,
    progress: Progress = None,
) -> Dict:
    config = machine(4)
    mix_names = mixes or mixes_for_cores(4)
    results = compare_schemes(
        mix_names,
        config,
        ["dip", "prism-h-dip", "tadip", "lru"],
        instructions=instructions,
        seed=seed,
        progress=progress,
    )
    rows = []
    for mix in mix_names:
        dip_antt = results[mix]["dip"].antt
        rows.append(
            {
                "mix": mix,
                "prism_h_dip": results[mix]["prism-h-dip"].antt / dip_antt,
                "tadip": results[mix]["tadip"].antt / dip_antt,
                "lru": results[mix]["lru"].antt / dip_antt,
            }
        )
    return {
        "id": "sec56",
        "rows": rows,
        "geomean": {
            key: geomean([r[key] for r in rows]) for key in ("prism_h_dip", "tadip", "lru")
        },
    }


def format_result(result: Dict) -> str:
    table = [[r["mix"], r["prism_h_dip"], r["tadip"], r["lru"]] for r in result["rows"]]
    g = result["geomean"]
    table.append(["geomean", g["prism_h_dip"], g["tadip"], g["lru"]])
    return (
        "Section 5.6: ANTT normalised to unmanaged DIP (lower = better)\n"
        + format_table(["mix", "PriSM-H+DIP", "TA-DIP", "LRU"], table)
    )
