"""Experiment harness: configurations, runner, and per-figure reproductions.

Each paper figure/table has a module exposing ``run(...) -> rows`` and is
registered in :mod:`repro.experiments.registry`; the ``benchmarks/`` tree
wraps these in pytest-benchmark entry points that print paper-style rows.
"""

from repro.experiments.configs import MachineConfig, machine
from repro.experiments.options import RunOptions, experiment_run
from repro.experiments.parallel import (
    RunSpec,
    SpecRunError,
    parallel_compare_schemes,
    resolve_jobs,
    run_specs,
)
from repro.experiments.runner import (
    StandaloneIPCCache,
    WorkloadResult,
    run_workload,
    standalone_ipcs,
)
from repro.experiments.schemes import SCHEMES, build_scheme

__all__ = [
    "MachineConfig",
    "machine",
    "RunOptions",
    "experiment_run",
    "WorkloadResult",
    "run_workload",
    "standalone_ipcs",
    "StandaloneIPCCache",
    "SCHEMES",
    "build_scheme",
    "RunSpec",
    "SpecRunError",
    "resolve_jobs",
    "run_specs",
    "parallel_compare_schemes",
]
