"""Figure 12 — K-bit eviction probabilities vs floating point (quad).

PriSM-H with probabilities stored as 6/8/10/12-bit integers, ANTT
normalised to the full-precision run. Paper: indistinguishable from float,
so 6-8 bits suffice in hardware.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.common import Progress, format_table
from repro.experiments.configs import machine
from repro.experiments.options import experiment_run
from repro.experiments.runner import run_workload
from repro.metrics import geomean
from repro.workloads.mixes import mixes_for_cores

__all__ = ["run", "format_result"]


@experiment_run
def run(
    instructions: Optional[int] = None,
    mixes: Optional[List[str]] = None,
    bit_widths: Sequence[int] = (6, 8, 10, 12),
    seed: int = 0,
    progress: Progress = None,
) -> Dict:
    config = machine(4)
    mix_names = mixes or mixes_for_cores(4)
    rows = []
    for mix in mix_names:
        if progress:
            progress(f"{mix} / prism-h float")
        reference = run_workload(mix, config, "prism-h", seed=seed, instructions=instructions)
        row = {"mix": mix}
        for bits in bit_widths:
            if progress:
                progress(f"{mix} / prism-h {bits}-bit")
            quantised = run_workload(
                mix,
                config,
                "prism-h",
                seed=seed,
                instructions=instructions,
                scheme_kwargs={"probability_bits": bits},
            )
            row[f"bits{bits}"] = quantised.antt / reference.antt
        rows.append(row)
    summary = {
        f"bits{bits}": geomean([r[f"bits{bits}"] for r in rows]) for bits in bit_widths
    }
    return {"id": "fig12", "bit_widths": list(bit_widths), "rows": rows, "geomean": summary}


def format_result(result: Dict) -> str:
    bits = result["bit_widths"]
    headers = ["mix"] + [f"{b}-bit" for b in bits]
    table = [[r["mix"]] + [r[f"bits{b}"] for b in bits] for r in result["rows"]]
    table.append(["geomean"] + [result["geomean"][f"bits{b}"] for b in bits])
    return (
        "Figure 12: ANTT of K-bit PriSM-H normalised to float PriSM-H (1.0 = identical)\n"
        + format_table(headers, table)
    )
