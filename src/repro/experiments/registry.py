"""Experiment registry: id -> (run, format) for every paper table/figure.

Used by the bench harness and by ``examples/reproduce_paper.py`` to
enumerate the full evaluation. Every ``run`` has the uniform signature
``run(options=None, **figure_kwargs)`` where ``options`` is a
:class:`~repro.experiments.options.RunOptions` carrying the cross-cutting
controls (``instructions``, ``seed``, ``progress``, ``jobs``,
``telemetry``); the pre-RunOptions keyword arguments are still accepted
for now but emit ``DeprecationWarning``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from repro.experiments import (
    fig01_motivation,
    fig02_summary,
    fig03_percore,
    fig04_occupancy,
    fig05_vs_waypart,
    fig06_cores_eq_ways,
    fig07_vantage,
    fig08_vantage_misses,
    fig09_fairness,
    fig10_qos,
    fig11_evprob,
    fig12_kbit,
    fig13_victim_notfound,
    fig_headroom,
    multi_tenant,
    sec56_dip,
)
from repro.clustering import scaleout

__all__ = ["Experiment", "EXPERIMENTS", "get_experiment"]


@dataclass(frozen=True)
class Experiment:
    """One reproducible paper result."""

    id: str
    title: str
    run: Callable
    format: Callable


EXPERIMENTS: Dict[str, Experiment] = {
    e.id: e
    for e in [
        Experiment("fig1", "Motivation: scalability and fine-grained partitioning",
                   fig01_motivation.run, fig01_motivation.format_result),
        Experiment("fig2", "PriSM performance summary vs core count",
                   fig02_summary.run, fig02_summary.format_result),
        Experiment("fig3", "Per-workload ANTT: PriSM-H vs UCP vs PIPP",
                   fig03_percore.run, fig03_percore.format_result),
        Experiment("fig4", "Cache occupancy: PriSM-H vs UCP (quad)",
                   fig04_occupancy.run, fig04_occupancy.format_result),
        Experiment("fig5", "Same policy, PriSM vs way-partitioning (16-core)",
                   fig05_vs_waypart.run, fig05_vs_waypart.format_result),
        Experiment("fig6", "16 cores on a 16-way cache",
                   fig06_cores_eq_ways.run, fig06_cores_eq_ways.format_result),
        Experiment("fig7", "PriSM vs Vantage (ANTT)",
                   fig07_vantage.run, fig07_vantage.format_result),
        Experiment("fig8", "Per-benchmark misses, PriSM vs Vantage (quad)",
                   fig08_vantage_misses.run, fig08_vantage_misses.format_result),
        Experiment("fig9", "Fairness: LRU vs way-partitioning vs PriSM-F (16-core)",
                   fig09_fairness.run, fig09_fairness.format_result),
        Experiment("fig10", "PriSM-Q: 80% stand-alone-IPC guarantee for core 0",
                   fig10_qos.run, fig10_qos.format_result),
        Experiment("fig11", "Eviction-probability stability (quad)",
                   fig11_evprob.run, fig11_evprob.format_result),
        Experiment("fig12", "K-bit probability representation",
                   fig12_kbit.run, fig12_kbit.format_result),
        Experiment("fig13", "Victim-not-found rate vs interval length",
                   fig13_victim_notfound.run, fig13_victim_notfound.format_result),
        Experiment("sec56", "PriSM over DIP replacement",
                   sec56_dip.run, sec56_dip.format_result),
        Experiment("tenants", "Multi-tenant web cache: per-tenant SLO scorecard",
                   multi_tenant.run, multi_tenant.format_result),
        Experiment("headroom", "Miss gap to the offline Belady/MIN optimum",
                   fig_headroom.run, fig_headroom.format_result),
        Experiment("scaleout", "Many-core scale-out: cluster-granular PriSM",
                   scaleout.run, scaleout.format_result),
    ]
}


def get_experiment(experiment_id: str) -> Experiment:
    """Look up an experiment by id.

    Raises:
        KeyError: listing the known ids.
    """
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {sorted(EXPERIMENTS)}"
        ) from None
