"""Figure 11 — Stability of eviction probabilities under PriSM-H (quad).

Per-benchmark mean and standard deviation of ``E_i`` across all interval
recomputations, computed from the :mod:`repro.telemetry` interval trace:
each run records every installed distribution at its interval boundary,
and :meth:`RunTelemetry.probability_stats` accumulates them with the
same running-sum formula the scheme uses internally — so the numbers are
bit-equal to the scheme's own reporting. The paper's point: the standard
deviation is small — the probabilities settle, so the control loop is
stable rather than thrashing.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.experiments.common import Progress, format_table
from repro.experiments.configs import machine
from repro.experiments.options import experiment_run
from repro.experiments.runner import run_workload
from repro.workloads.mixes import mixes_for_cores

__all__ = ["run", "format_result"]


@experiment_run
def run(
    instructions: Optional[int] = None,
    mixes: Optional[List[str]] = None,
    seed: int = 0,
    progress: Progress = None,
) -> Dict:
    config = machine(4)
    mix_names = mixes or mixes_for_cores(4)
    rows = []
    recompute_counts = []
    for mix in mix_names:
        if progress:
            progress(f"{mix} / prism-h")
        result = run_workload(
            mix, config, "prism-h", seed=seed, instructions=instructions,
            telemetry=True,
        )
        trace = result.telemetry
        stats = trace.probability_stats()
        recompute_counts.append(trace.num_intervals)
        for core, name in enumerate(result.benchmarks):
            rows.append(
                {
                    "mix": mix,
                    "benchmark": name,
                    "mean": stats[core]["mean"],
                    "std": stats[core]["std"],
                }
            )
    return {
        "id": "fig11",
        "rows": rows,
        "recomputations_min": min(recompute_counts) if recompute_counts else 0,
        "recomputations_max": max(recompute_counts) if recompute_counts else 0,
    }


def format_result(result: Dict) -> str:
    table = [[r["mix"], r["benchmark"], r["mean"], r["std"]] for r in result["rows"]]
    return (
        "Figure 11: eviction-probability mean/std per benchmark (quad-core PriSM-H); "
        f"recomputations per mix: {result['recomputations_min']}-"
        f"{result['recomputations_max']}\n"
        + format_table(["mix", "benchmark", "mean", "std"], table, width=14)
    )
