"""Figure 9 — Fairness of LRU, way-partitioning [9] and PriSM-F (16-core).

Absolute fairness (min/max relative slowdown; higher is better) per
sixteen-core mix, plus the performance side-effect: the paper reports that
PriSM-F's fairness gains come *with* an ANTT improvement (+19% over LRU),
never at its expense.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.experiments.common import Progress, compare_schemes, format_table
from repro.experiments.configs import machine
from repro.experiments.options import experiment_run
from repro.metrics import geomean
from repro.workloads.mixes import mixes_for_cores

__all__ = ["run", "format_result"]


@experiment_run
def run(
    instructions: Optional[int] = None,
    mixes: Optional[List[str]] = None,
    cores: int = 16,
    seed: int = 0,
    progress: Progress = None,
) -> Dict:
    config = machine(cores)
    mix_names = mixes or mixes_for_cores(cores)
    results = compare_schemes(
        mix_names,
        config,
        ["lru", "fair-waypart", "prism-f"],
        instructions=instructions,
        seed=seed,
        progress=progress,
    )
    rows = []
    for mix in mix_names:
        rows.append(
            {
                "mix": mix,
                "lru": results[mix]["lru"].fairness,
                "waypart": results[mix]["fair-waypart"].fairness,
                "prism_f": results[mix]["prism-f"].fairness,
                "prism_f_antt_vs_lru": results[mix]["prism-f"].antt
                / results[mix]["lru"].antt,
            }
        )
    return {
        "id": "fig9",
        "cores": cores,
        "rows": rows,
        "geomean": {
            "lru": geomean([r["lru"] for r in rows]),
            "waypart": geomean([r["waypart"] for r in rows]),
            "prism_f": geomean([r["prism_f"] for r in rows]),
            "prism_f_antt_vs_lru": geomean([r["prism_f_antt_vs_lru"] for r in rows]),
        },
    }


def format_result(result: Dict) -> str:
    table = [
        [r["mix"], r["lru"], r["waypart"], r["prism_f"], r["prism_f_antt_vs_lru"]]
        for r in result["rows"]
    ]
    g = result["geomean"]
    table.append(["geomean", g["lru"], g["waypart"], g["prism_f"], g["prism_f_antt_vs_lru"]])
    return (
        f"Figure 9: fairness at {result['cores']} cores (higher = better; "
        "last column: PriSM-F ANTT vs LRU, lower = better)\n"
        + format_table(["mix", "LRU", "way-part", "PriSM-F", "ANTT-ratio"], table)
    )
