"""Machine configurations: Table 2 of the paper, geometrically scaled.

The paper's machines (4 GHz, 4-wide cores; LLCs of 4/8/16 MB at 16/32/64
ways; 1/2/4/8 memory controllers) are scaled down by ``scale_factor``
(default 64) so pure-Python simulation stays tractable: occupancy and
probability arithmetic is all in cache *fractions*, so shrinking cache and
working sets together preserves the contention structure (DESIGN.md §5).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.geometry import CacheGeometry
from repro.util.validate import check_power_of_two

__all__ = ["MachineConfig", "machine", "PAPER_LLC"]

#: Paper Table 2: core count -> (LLC bytes, associativity, controllers).
PAPER_LLC = {
    4: (4 << 20, 16, 1),
    8: (4 << 20, 16, 2),
    16: (8 << 20, 32, 4),
    32: (16 << 20, 64, 8),
}

#: Default per-core instruction targets at the default scale (the paper's
#: 500M for 4/8 cores and 200M for 16/32 cores, scaled to minutes of
#: Python time).
DEFAULT_INSTRUCTIONS = {4: 2_000_000, 8: 1_500_000, 16: 1_000_000, 32: 600_000}


@dataclass(frozen=True)
class MachineConfig:
    """A simulated machine.

    Attributes:
        num_cores: cores sharing the LLC.
        geometry: the (scaled) LLC geometry.
        num_controllers: memory controllers.
        instructions: default per-core instruction target.
        workload_scale: footprint multiplier applied to benchmark zones
            (1.0 = the catalog's reference calibration).
    """

    num_cores: int
    geometry: CacheGeometry
    num_controllers: int
    instructions: int
    workload_scale: float = 1.0

    def __str__(self) -> str:
        return (
            f"{self.num_cores}core/{self.geometry}/"
            f"{self.num_controllers}mc/{self.instructions}instr"
        )


def machine(
    num_cores: int,
    scale_factor: int = 64,
    instructions: int = None,
    assoc: int = None,
    llc_bytes: int = None,
) -> MachineConfig:
    """Build the Table-2 machine for ``num_cores``, scaled down.

    Args:
        num_cores: 4, 8, 16 or 32 (the paper's configurations).
        scale_factor: power-of-two capacity divisor (64 -> 64 KB-256 KB LLCs).
        instructions: per-core instruction target override.
        assoc: associativity override (Fig. 1(b)'s 64/256-way sweeps,
            Fig. 6's 16-way-at-16-cores configuration).
        llc_bytes: unscaled LLC capacity override (Fig. 6 uses 8 MB).
    """
    if num_cores not in PAPER_LLC:
        raise ValueError(f"num_cores must be one of {sorted(PAPER_LLC)}, got {num_cores}")
    check_power_of_two("scale_factor", scale_factor)
    size, table_assoc, controllers = PAPER_LLC[num_cores]
    if llc_bytes is not None:
        size = llc_bytes
    if assoc is None:
        assoc = table_assoc
    geometry = CacheGeometry(size // scale_factor, block_bytes=64, assoc=assoc)
    if instructions is None:
        instructions = DEFAULT_INSTRUCTIONS[num_cores]
    return MachineConfig(
        num_cores=num_cores,
        geometry=geometry,
        num_controllers=controllers,
        instructions=instructions,
        workload_scale=1.0,
    )
