"""Machine configurations: Table 2 of the paper, geometrically scaled.

The paper's machines (4 GHz, 4-wide cores; LLCs of 4/8/16 MB at 16/32/64
ways; 1/2/4/8 memory controllers) are scaled down by ``scale_factor``
(default 64) so pure-Python simulation stays tractable: occupancy and
probability arithmetic is all in cache *fractions*, so shrinking cache and
working sets together preserves the contention structure (DESIGN.md §5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cache.geometry import CacheGeometry
from repro.util.validate import check_power_of_two

__all__ = ["MachineConfig", "machine", "PAPER_LLC", "DEFAULT_L1_BYTES"]

#: Paper Table 2: core count -> (LLC bytes, associativity, controllers).
#: The 64-core row extrapolates the table one step (the paper stops at
#: 32) for the cluster-granular scale-out experiments: capacity and
#: controllers double, associativity stays at the 64-way ceiling.
PAPER_LLC = {
    4: (4 << 20, 16, 1),
    8: (4 << 20, 16, 2),
    16: (8 << 20, 32, 4),
    32: (16 << 20, 64, 8),
    64: (32 << 20, 64, 16),
}

#: Default per-core instruction targets at the default scale (the paper's
#: 500M for 4/8 cores and 200M for 16/32 cores, scaled to minutes of
#: Python time).
DEFAULT_INSTRUCTIONS = {4: 2_000_000, 8: 1_500_000, 16: 1_000_000, 32: 600_000,
                        64: 400_000}

#: Unscaled private-L1 capacity when a hierarchy is requested (64 KB,
#: the common per-core L1D size; divided by the same ``scale_factor`` as
#: the LLC so the L1:LLC capacity ratio survives scaling).
DEFAULT_L1_BYTES = 64 << 10


@dataclass(frozen=True)
class MachineConfig:
    """A simulated machine.

    Attributes:
        num_cores: cores sharing the LLC.
        geometry: the (scaled) LLC geometry.
        num_controllers: memory controllers.
        instructions: default per-core instruction target.
        workload_scale: footprint multiplier applied to benchmark zones
            (1.0 = the catalog's reference calibration).
        l1_geometry: per-core private L1 in front of the LLC, or ``None``
            (the default) for the historical LLC-only machine.
        l1_inclusive: enforce an inclusive hierarchy (LLC evictions
            back-invalidate the owner's L1); only meaningful with
            ``l1_geometry``.
        dram_banks: DRAM banks per memory controller (1 = the flat
            fixed-latency DRAM model).
        dram_row_blocks: cache blocks per DRAM row; 0 disables the
            row-buffer model (see :class:`repro.cpu.memory.MemoryModel`).
    """

    num_cores: int
    geometry: CacheGeometry
    num_controllers: int
    instructions: int
    workload_scale: float = 1.0
    l1_geometry: Optional[CacheGeometry] = None
    l1_inclusive: bool = False
    dram_banks: int = 1
    dram_row_blocks: int = 0

    def __str__(self) -> str:
        base = (
            f"{self.num_cores}core/{self.geometry}/"
            f"{self.num_controllers}mc/{self.instructions}instr"
        )
        if self.l1_geometry is not None:
            mode = "incl" if self.l1_inclusive else "nincl"
            base += f"/l1-{self.l1_geometry}-{mode}"
        if self.dram_banks > 1 or self.dram_row_blocks:
            base += f"/dram-{self.dram_banks}b-{self.dram_row_blocks}r"
        return base


def machine(
    num_cores: int,
    scale_factor: int = 64,
    instructions: int = None,
    assoc: int = None,
    llc_bytes: int = None,
    l1: Optional[str] = None,
    l1_bytes: int = None,
    l1_assoc: int = 2,
    dram_banks: int = 1,
    dram_row_blocks: int = 0,
) -> MachineConfig:
    """Build the Table-2 machine for ``num_cores``, scaled down.

    Args:
        num_cores: 4, 8, 16, 32 (the paper's configurations) or 64
            (extrapolated one step past Table 2 for the scale-out runs).
        scale_factor: power-of-two capacity divisor (64 -> 64 KB-256 KB LLCs).
        instructions: per-core instruction target override.
        assoc: associativity override (Fig. 1(b)'s 64/256-way sweeps,
            Fig. 6's 16-way-at-16-cores configuration).
        llc_bytes: unscaled LLC capacity override (Fig. 6 uses 8 MB).
        l1: ``"inclusive"`` or ``"non-inclusive"`` to put a private L1 in
            front of each core; ``None`` (default) keeps the LLC-only
            machine the paper's figures are calibrated on.
        l1_bytes: unscaled per-core L1 capacity (default
            :data:`DEFAULT_L1_BYTES`; scaled by ``scale_factor`` like the
            LLC).
        l1_assoc: L1 associativity (power of two).
        dram_banks: DRAM banks per memory controller.
        dram_row_blocks: cache blocks per DRAM row (0 = flat DRAM model).
    """
    if num_cores not in PAPER_LLC:
        raise ValueError(f"num_cores must be one of {sorted(PAPER_LLC)}, got {num_cores}")
    check_power_of_two("scale_factor", scale_factor)
    size, table_assoc, controllers = PAPER_LLC[num_cores]
    if llc_bytes is not None:
        size = llc_bytes
    if assoc is None:
        assoc = table_assoc
    geometry = CacheGeometry(size // scale_factor, block_bytes=64, assoc=assoc)
    if instructions is None:
        instructions = DEFAULT_INSTRUCTIONS[num_cores]
    l1_geometry = None
    l1_inclusive = False
    if l1 is not None:
        if l1 not in ("inclusive", "non-inclusive"):
            raise ValueError(
                f"l1 must be 'inclusive' or 'non-inclusive', got {l1!r}"
            )
        l1_geometry = CacheGeometry(
            (l1_bytes if l1_bytes is not None else DEFAULT_L1_BYTES) // scale_factor,
            block_bytes=64,
            assoc=l1_assoc,
        )
        l1_inclusive = l1 == "inclusive"
    elif l1_bytes is not None:
        raise ValueError("l1_bytes given without l1 mode")
    return MachineConfig(
        num_cores=num_cores,
        geometry=geometry,
        num_controllers=controllers,
        instructions=instructions,
        workload_scale=1.0,
        l1_geometry=l1_geometry,
        l1_inclusive=l1_inclusive,
        dram_banks=dram_banks,
        dram_row_blocks=dram_row_blocks,
    )
