"""Figure 4 — Final cache occupancy under PriSM-H vs UCP (quad-core).

Each program's occupancy fraction is sampled the moment it retires its
instruction target (programs finish at different times, so the fractions
need not sum to 1 — exactly as the paper notes). The paper's narrative
examples: PriSM gives ``168.wupwise`` more space in Q1, favours
``175.vpr``/``471.omnetpp`` over the streamers in Q4, and rewards
``179.art``/``471.omnetpp`` in Q7/Q11/Q12.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.experiments.common import Progress, compare_schemes, format_table
from repro.experiments.configs import machine
from repro.workloads.mixes import mixes_for_cores

__all__ = ["run", "format_result"]


def run(
    instructions: Optional[int] = None,
    mixes: Optional[List[str]] = None,
    seed: int = 0,
    progress: Progress = None,
) -> Dict:
    config = machine(4)
    mix_names = mixes or mixes_for_cores(4)
    results = compare_schemes(
        mix_names,
        config,
        ["prism-h", "ucp"],
        instructions=instructions,
        seed=seed,
        progress=progress,
    )
    rows = []
    for mix in mix_names:
        prism = results[mix]["prism-h"]
        ucp = results[mix]["ucp"]
        for core, name in enumerate(prism.benchmarks):
            rows.append(
                {
                    "mix": mix,
                    "core": core,
                    "benchmark": name,
                    "prism_occupancy": prism.cores[core].occupancy_at_finish,
                    "ucp_occupancy": ucp.cores[core].occupancy_at_finish,
                }
            )
    return {"id": "fig4", "rows": rows}


def format_result(result: Dict) -> str:
    table = [
        [r["mix"], r["benchmark"], r["prism_occupancy"], r["ucp_occupancy"]]
        for r in result["rows"]
    ]
    return "Figure 4: occupancy at finish (fraction of cache)\n" + format_table(
        ["mix", "benchmark", "PriSM-H", "UCP"], table, width=14
    )
