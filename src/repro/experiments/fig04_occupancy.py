"""Figure 4 — Final cache occupancy under PriSM-H vs UCP (quad-core).

Each program's occupancy fraction is sampled the moment it retires its
instruction target (programs finish at different times, so the fractions
need not sum to 1 — exactly as the paper notes). The samples come from
the :mod:`repro.telemetry` recorder's per-core finish events — the runs
execute with ``telemetry=True`` and the figure reads the recorded
:class:`~repro.telemetry.FinishSample` occupancies. The paper's narrative
examples: PriSM gives ``168.wupwise`` more space in Q1, favours
``175.vpr``/``471.omnetpp`` over the streamers in Q4, and rewards
``179.art``/``471.omnetpp`` in Q7/Q11/Q12.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.experiments.common import Progress, compare_schemes, format_table
from repro.experiments.configs import machine
from repro.experiments.options import experiment_run
from repro.workloads.mixes import mixes_for_cores

__all__ = ["run", "format_result"]


@experiment_run
def run(
    instructions: Optional[int] = None,
    mixes: Optional[List[str]] = None,
    seed: int = 0,
    progress: Progress = None,
) -> Dict:
    config = machine(4)
    mix_names = mixes or mixes_for_cores(4)
    results = compare_schemes(
        mix_names,
        config,
        ["prism-h", "ucp"],
        instructions=instructions,
        seed=seed,
        progress=progress,
        telemetry=True,
    )
    rows = []
    for mix in mix_names:
        prism = results[mix]["prism-h"].telemetry
        ucp = results[mix]["ucp"].telemetry
        for core, name in enumerate(results[mix]["prism-h"].benchmarks):
            rows.append(
                {
                    "mix": mix,
                    "core": core,
                    "benchmark": name,
                    "prism_occupancy": prism.occupancy_at_finish(core),
                    "ucp_occupancy": ucp.occupancy_at_finish(core),
                }
            )
    return {"id": "fig4", "rows": rows}


def format_result(result: Dict) -> str:
    table = [
        [r["mix"], r["benchmark"], r["prism_occupancy"], r["ucp_occupancy"]]
        for r in result["rows"]
    ]
    return "Figure 4: occupancy at finish (fraction of cache)\n" + format_table(
        ["mix", "benchmark", "PriSM-H", "UCP"], table, width=14
    )
