"""Headroom — per-scheme miss gap to the offline Belady/MIN optimum.

Not a figure from the paper: a bound the paper could not report. For each
mix, one post-L1 trace is recorded from an unmanaged-LRU run on the
hierarchy machine (private inclusive L1s in front of the shared LLC);
every scheme then replays *that same trace* through a fresh cache, so
hit counts are directly comparable, and Belady/MIN on the recorded
future gives the optimal hit count any demand-fill policy could have
achieved. The gap between a scheme's misses and Belady's is the
remaining headroom replacement/partitioning could still claw back.

Every row is certified by :func:`repro.check.belady.assert_belady_bound`
— the run aborts with an ``InvariantViolation`` if any online policy
appears to beat the offline optimum (which would mean the simulator is
broken, not that the policy is clever).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cache.cache import SharedCache
from repro.cache.replacement.lru import LRUPolicy
from repro.check.belady import assert_belady_bound
from repro.cpu.system import MultiCoreSystem
from repro.experiments.common import Progress, format_table
from repro.experiments.configs import machine
from repro.experiments.options import experiment_run
from repro.experiments.runner import _machine_memory
from repro.util.rng import derive_seed
from repro.workloads.mixes import mixes_for_cores
from repro.workloads.registry import resolve_workload

__all__ = ["run", "format_result", "DEFAULT_SCHEMES"]

#: Schemes replayed against the optimum by default: the unmanaged
#: baselines (true LRU, the PLRU hardware approximation, DIP) and the
#: PriSM variants whose headroom the bound is really about.
DEFAULT_SCHEMES = ["lru", "plru", "dip", "prism-h", "prism-f"]


@experiment_run
def run(
    instructions: Optional[int] = None,
    mixes: Optional[List[str]] = None,
    schemes: Optional[List[str]] = None,
    seed: int = 0,
    progress: Progress = None,
) -> Dict:
    config = machine(4, l1="inclusive")
    mix_names = mixes or mixes_for_cores(4)
    scheme_names = schemes or list(DEFAULT_SCHEMES)
    budget = instructions or config.instructions
    rows = []
    traces = {}
    for mix in mix_names:
        source = resolve_workload(mix)
        profiles = source.profiles()
        cache = SharedCache(config.geometry, config.num_cores, policy=LRUPolicy())
        system = MultiCoreSystem(
            cache,
            profiles,
            seed=derive_seed(seed, "headroom", mix),
            scale=config.workload_scale,
            memory=_machine_memory(config),
            l1_geometry=config.l1_geometry,
            inclusive=config.l1_inclusive,
            record_trace=True,
        )
        system.run(budget)
        trace = system.recorded_trace
        traces[mix] = len(trace)
        if progress:
            progress(f"{mix}: recorded {len(trace)} LLC accesses, replaying")
        results = assert_belady_bound(
            trace,
            config.geometry,
            scheme_names,
            seed=derive_seed(seed, "headroom-replay", mix),
        )
        optimal = results["belady"]
        for scheme in ["belady"] + [s for s in scheme_names if s != "belady"]:
            replay = results[scheme]
            gap = replay.total_misses - optimal.total_misses
            rows.append(
                {
                    "mix": mix,
                    "scheme": scheme,
                    "hits": replay.total_hits,
                    "misses": replay.total_misses,
                    "miss_gap": gap,
                    "gap_pct": (
                        100.0 * gap / optimal.total_misses
                        if optimal.total_misses
                        else 0.0
                    ),
                }
            )
    return {
        "id": "headroom",
        "rows": rows,
        "trace_lengths": traces,
        "machine": str(config),
        "schemes": scheme_names,
    }


def format_result(result: Dict) -> str:
    table = [
        [r["mix"], r["scheme"], r["hits"], r["misses"], r["miss_gap"], r["gap_pct"]]
        for r in result["rows"]
    ]
    return (
        "Headroom: misses vs the offline Belady/MIN optimum on one shared "
        "recorded post-L1 trace per mix\n"
        f"(machine {result['machine']}; bound certified on every row)\n"
        + format_table(
            ["mix", "scheme", "hits", "misses", "miss-gap", "gap-%"],
            table,
            width=12,
        )
    )
