"""Seed sweeps: run-to-run noise quantification.

The simulator is deterministic per seed, but conclusions should not hinge
on one seed's PRNG path (stream draws, PriSM's core-selection, DIP's
bimodal throws). :func:`run_seeds` repeats a workload across seeds and
reports mean, standard deviation, and a Student-t confidence interval for
each metric — the error bars behind every comparison in EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.configs import MachineConfig
from repro.experiments.parallel import RunSpec, run_specs
from repro.experiments.runner import WorkloadResult

__all__ = ["MetricSummary", "SeedSweep", "run_seeds", "compare_with_confidence"]

_METRICS = ("antt", "fairness", "throughput", "weighted_speedup")


@dataclass(frozen=True)
class MetricSummary:
    """Mean/σ/CI of one metric across seeds."""

    mean: float
    std: float
    ci_low: float
    ci_high: float
    n: int

    def overlaps(self, other: "MetricSummary") -> bool:
        """Whether the two confidence intervals overlap."""
        return self.ci_low <= other.ci_high and other.ci_low <= self.ci_high


@dataclass
class SeedSweep:
    """All per-seed results plus per-metric summaries."""

    mix: str
    scheme: str
    results: List[WorkloadResult]
    metrics: Dict[str, MetricSummary] = field(default_factory=dict)


def _summarise(values: Sequence[float], confidence: float) -> MetricSummary:
    n = len(values)
    mean = sum(values) / n
    if n < 2:
        return MetricSummary(mean, 0.0, mean, mean, n)
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    std = math.sqrt(variance)
    from scipy import stats

    t = stats.t.ppf(0.5 + confidence / 2, df=n - 1)
    half = t * std / math.sqrt(n)
    return MetricSummary(mean, std, mean - half, mean + half, n)


def run_seeds(
    mix,
    config: MachineConfig,
    scheme: str,
    seeds: Sequence[int] = (0, 1, 2, 3, 4),
    instructions: Optional[int] = None,
    scheme_kwargs: Optional[dict] = None,
    confidence: float = 0.95,
    jobs: Optional[int] = None,
    store=None,
) -> SeedSweep:
    """Run one (mix, scheme) across several seeds and summarise.

    Seed sweeps are the natural fan-out unit: every per-seed run is
    independent, so ``jobs`` above 1 (or ``REPRO_JOBS``) distributes them
    over a process pool with per-seed results identical to a serial loop
    (see :mod:`repro.experiments.parallel`).

    Args:
        store: a :class:`repro.campaign.ResultStore` (or path): per-seed
            runs already in the store are not recomputed, and fresh ones
            persist for the next sweep. ``None`` consults ``REPRO_STORE``
            (see :mod:`repro.campaign`).

    Raises:
        ValueError: if no seeds are given.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    specs = [
        RunSpec(
            mix=mix,
            scheme=scheme,
            seed=seed,
            instructions=instructions,
            scheme_kwargs=scheme_kwargs,
        )
        for seed in seeds
    ]
    results = run_specs(specs, config, jobs=jobs, store=store)
    sweep = SeedSweep(mix=results[0].mix, scheme=scheme, results=results)
    for metric in _METRICS:
        values = [getattr(r, metric) for r in results]
        sweep.metrics[metric] = _summarise(values, confidence)
    return sweep


def compare_with_confidence(
    mix,
    config: MachineConfig,
    scheme_a: str,
    scheme_b: str,
    seeds: Sequence[int] = (0, 1, 2, 3, 4),
    metric: str = "antt",
    instructions: Optional[int] = None,
    jobs: Optional[int] = None,
    store=None,
) -> Tuple[SeedSweep, SeedSweep, bool]:
    """Run two schemes across seeds; report whether A beats B decisively.

    With a single seed both confidence intervals are degenerate points,
    so ``significant`` simply reports whether the two means differ; treat
    single-seed "significance" accordingly.

    Returns:
        ``(sweep_a, sweep_b, significant)`` where ``significant`` means the
        confidence intervals of ``metric`` do not overlap (with ANTT's
        lower-is-better orientation handled by the caller — this function
        only reports separation).
    """
    sweep_a = run_seeds(
        mix, config, scheme_a, seeds, instructions=instructions, jobs=jobs, store=store
    )
    sweep_b = run_seeds(
        mix, config, scheme_b, seeds, instructions=instructions, jobs=jobs, store=store
    )
    separated = not sweep_a.metrics[metric].overlaps(sweep_b.metrics[metric])
    return sweep_a, sweep_b, separated
