"""Figure 10 — PriSM-Q: holding core 0 at 80% of its stand-alone IPC.

For each sixteen-core mix, core 0's achieved slowdown
(``IPC^MP / IPC^SP``) under PriSM-Q with an 80% target. The paper's
reading: most mixes land close to 0.8; cache-insensitive programs sit
*above* the target because 80% is below their worst-case slowdown (they
barely depend on the LLC at all).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.experiments.common import Progress, format_table
from repro.experiments.configs import machine
from repro.experiments.options import experiment_run
from repro.experiments.runner import run_workload
from repro.workloads.mixes import mixes_for_cores

__all__ = ["run", "format_result"]


@experiment_run
def run(
    instructions: Optional[int] = None,
    mixes: Optional[List[str]] = None,
    cores: int = 16,
    target_fraction: float = 0.8,
    tolerance: float = 0.05,
    seed: int = 0,
    progress: Progress = None,
) -> Dict:
    config = machine(cores)
    mix_names = mixes or mixes_for_cores(cores)
    rows = []
    achieved = 0
    for mix in mix_names:
        if progress:
            progress(f"{mix} / prism-q")
        lru = run_workload(mix, config, "lru", seed=seed, instructions=instructions)
        result = run_workload(
            mix,
            config,
            "prism-q",
            seed=seed,
            instructions=instructions,
            scheme_kwargs={"target_ipc_fraction": target_fraction},
        )
        slowdown = result.slowdown(0)
        # "Achieved" = at or above target (a tolerance band below counts as
        # close-enough, mirroring the paper's 38-of-41 reading).
        ok = slowdown >= target_fraction * (1.0 - tolerance)
        achieved += ok
        rows.append(
            {
                "mix": mix,
                "benchmark": result.benchmarks[0],
                "slowdown": slowdown,
                "lru_slowdown": lru.slowdown(0),
                "target": target_fraction,
                "achieved": ok,
            }
        )
    return {
        "id": "fig10",
        "cores": cores,
        "target_fraction": target_fraction,
        "rows": rows,
        "achieved": achieved,
        "total": len(rows),
    }


def format_result(result: Dict) -> str:
    table = [
        [
            r["mix"],
            r["benchmark"],
            r["slowdown"],
            r["lru_slowdown"],
            "yes" if r["achieved"] else "NO",
        ]
        for r in result["rows"]
    ]
    return (
        f"Figure 10: PriSM-Q core-0 slowdown vs {result['target_fraction']:.0%} target "
        f"({result['achieved']}/{result['total']} achieved)\n"
        + format_table(
            ["mix", "core0-bench", "slowdown", "LRU-slowdn", "achieved"], table, width=14
        )
    )
