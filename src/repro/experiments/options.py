"""The one run-options object every experiment entry point accepts.

Before this module each figure's ``run()`` grew its own ad-hoc
``instructions=/seed=/progress=`` kwargs and the jobs knob travelled by
environment variable only. :class:`RunOptions` bundles the cross-cutting
run controls; the :func:`experiment_run` decorator gives every registry
``run()`` the uniform signature ``run(options=None, **figure_kwargs)``
while still accepting the legacy kwargs for one release (with
``DeprecationWarning``).

Figure-specific knobs (``core_counts``, ``bit_widths``, ...) stay plain
kwargs — they are not run controls.
"""

from __future__ import annotations

import functools
import inspect
import os
import warnings
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Callable, Optional

__all__ = ["RunOptions", "resolve_run_options", "experiment_run"]

#: Same env vars the parallel executor reads (kept in sync by a test).
JOBS_ENV = "REPRO_JOBS"
STORE_ENV = "REPRO_STORE"

#: Run controls the decorator still accepts as legacy keyword arguments.
_LEGACY_KWARGS = ("instructions", "seed", "progress", "jobs", "telemetry")


@dataclass(frozen=True)
class RunOptions:
    """Cross-cutting controls for one experiment or workload run.

    Args:
        instructions: per-core instruction target (``None`` = the
            figure's/machine's default budget).
        progress: per-run progress callback (``print``-compatible).
        jobs: worker processes for the parallel executor (``None`` =
            serial unless ``REPRO_JOBS`` is set; ``0`` = all CPUs).
        seed: top-level seed for streams and scheme PRNGs.
        telemetry: record per-interval telemetry into each
            ``WorkloadResult.telemetry`` (or pass a pre-built
            ``TelemetryRecorder`` for a single run).
        standalone_cache: the ``IPC^SP`` memo to use (``None`` = the
            process-wide default).
        store: path to a :class:`repro.campaign.ResultStore` directory;
            grids executed under these options skip runs the store
            already holds and persist new ones (``None`` = no store
            unless ``REPRO_STORE`` is set).
        check: attach the cache-engine invariant checker
            (:func:`repro.check.attach_checker`) to every shared cache the
            run builds; an inconsistency raises
            :class:`~repro.check.InvariantViolation` instead of silently
            corrupting results. Off by default (it audits the whole cache
            periodically — see ``docs/testing.md`` for the overhead).
        backend: cache engine, ``"classic"`` or ``"vector"`` (see
            :func:`repro.cache.backends.build_cache`). The engines are
            certified bit-exact, so this is a speed knob, not a result
            knob — it is excluded from campaign fingerprints.
    """

    instructions: Optional[int] = None
    progress: Optional[Callable[[str], None]] = None
    jobs: Optional[int] = None
    seed: int = 0
    telemetry: object = False
    standalone_cache: object = None
    store: Optional[str] = None
    check: bool = False
    backend: str = "classic"


def resolve_run_options(
    options: Optional[RunOptions], legacy: dict, stacklevel: int = 3
) -> RunOptions:
    """Merge deprecated per-kwarg run controls into a :class:`RunOptions`.

    Every entry in ``legacy`` (the old ``instructions=``/``seed=``/...
    kwargs, present only if the caller passed them) earns a
    ``DeprecationWarning`` and overrides the corresponding ``options``
    field.
    """
    if options is None:
        options = RunOptions()
    if legacy:
        names = ", ".join(sorted(legacy))
        warnings.warn(
            f"passing {names} as keyword argument(s) is deprecated; "
            f"pass options=RunOptions({names}=...) instead",
            DeprecationWarning,
            stacklevel=stacklevel,
        )
        options = replace(options, **legacy)
    return options


@contextmanager
def _run_env(jobs: Optional[int], store: Optional[str] = None):
    """Temporarily pin ``REPRO_JOBS``/``REPRO_STORE`` for nested calls.

    The figure implementations fan out through ``compare_schemes`` many
    layers down; rather than threading ``jobs``/``store`` through every
    signature, the wrapper pins the env vars the parallel executor
    resolves at fan-out time.
    """
    overrides = {}
    if jobs is not None:
        overrides[JOBS_ENV] = str(jobs)
    if store is not None:
        overrides[STORE_ENV] = os.fspath(store)
    if not overrides:
        yield
        return
    previous = {name: os.environ.get(name) for name in overrides}
    os.environ.update(overrides)
    try:
        yield
    finally:
        for name, value in previous.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value


def experiment_run(func):
    """Give a figure ``run()`` implementation the uniform options API.

    The wrapped function keeps its internal signature
    (``instructions=None, ..., seed=0, progress=None``); the wrapper
    exposes ``run(options=None, **figure_kwargs)``, forwards whichever
    run controls the implementation declares, pins ``REPRO_JOBS`` /
    ``REPRO_STORE`` while it executes when ``options.jobs`` /
    ``options.store`` are set, and accepts the legacy kwargs (and a bare
    positional instruction count) with a ``DeprecationWarning``.
    """
    accepted = set(inspect.signature(func).parameters)

    @functools.wraps(func)
    def wrapper(options=None, **kwargs):
        legacy = {k: kwargs.pop(k) for k in _LEGACY_KWARGS if k in kwargs}
        if isinstance(options, int):  # old positional instructions=
            legacy["instructions"] = options
            options = None
        opts = resolve_run_options(options, legacy)
        for name in ("instructions", "seed", "progress", "telemetry"):
            if name in accepted:
                kwargs[name] = getattr(opts, name)
        with _run_env(opts.jobs, opts.store):
            return func(**kwargs)

    wrapper.__wrapped_run__ = func
    return wrapper
