"""Figure 2 — PriSM performance summary across core counts.

Left panel: PriSM-H's ANTT gain over LRU (alongside UCP and PIPP) at
4/8/16/32 cores. Right panel: PriSM-F's fairness (alongside LRU and the
way-partitioning fairness scheme) at 4/8/16 cores. Paper headline numbers:
PriSM-H gains 17.9/16.5/18.7/12.7% over LRU; PriSM-F beats way-partitioned
fairness by 1.4/13.1/23.3%.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.experiments.common import (
    Progress,
    compare_schemes,
    format_table,
    geomean_ratio,
    resolve_instructions,
)
from repro.experiments.configs import machine
from repro.experiments.options import experiment_run
from repro.metrics import geomean
from repro.workloads.mixes import mixes_for_cores

__all__ = ["run", "format_result"]


@experiment_run
def run(
    instructions: Optional[int] = None,
    mixes_per_count: Optional[int] = None,
    core_counts=(4, 8, 16, 32),
    seed: int = 0,
    progress: Progress = None,
) -> Dict:
    rows = []
    for cores in core_counts:
        config = machine(cores)
        mixes = mixes_for_cores(cores)
        if mixes_per_count:
            mixes = mixes[:mixes_per_count]
        schemes = ["lru", "prism-h", "ucp", "pipp"]
        if cores <= 16:
            schemes += ["prism-f", "fair-waypart"]
        results = compare_schemes(
            mixes,
            config,
            schemes,
            instructions=resolve_instructions(instructions, cores),
            seed=seed,
            progress=progress,
        )
        row = {
            "cores": cores,
            "prism_h_antt_vs_lru": geomean_ratio(results, "prism-h", "lru"),
            "ucp_antt_vs_lru": geomean_ratio(results, "ucp", "lru"),
            "pipp_antt_vs_lru": geomean_ratio(results, "pipp", "lru"),
        }
        if cores <= 16:
            row["fairness_lru"] = geomean([results[m]["lru"].fairness for m in mixes])
            row["fairness_prism_f"] = geomean(
                [results[m]["prism-f"].fairness for m in mixes]
            )
            row["fairness_waypart"] = geomean(
                [results[m]["fair-waypart"].fairness for m in mixes]
            )
            row["prism_f_antt_vs_lru"] = geomean_ratio(results, "prism-f", "lru")
        rows.append(row)
    return {"id": "fig2", "rows": rows}


def format_result(result: Dict) -> str:
    parts = ["Figure 2: PriSM summary (ANTT ratios: lower = better; fairness: higher = better)"]
    headers = [
        "cores",
        "PriSM-H/LRU",
        "UCP/LRU",
        "PIPP/LRU",
        "F(LRU)",
        "F(PriSM-F)",
        "F(waypart)",
    ]
    table = []
    for r in result["rows"]:
        table.append(
            [
                r["cores"],
                r["prism_h_antt_vs_lru"],
                r["ucp_antt_vs_lru"],
                r["pipp_antt_vs_lru"],
                r.get("fairness_lru", float("nan")),
                r.get("fairness_prism_f", float("nan")),
                r.get("fairness_waypart", float("nan")),
            ]
        )
    parts.append(format_table(headers, table))
    return "\n".join(parts)
