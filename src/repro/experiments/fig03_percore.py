"""Figure 3 — Per-workload ANTT: PriSM-H vs UCP vs PIPP.

(a) the 21 quad-core workloads, (b) the 14 thirtytwo-core workloads; all
ANTTs normalised to LRU (lower is better). The paper's reading: PriSM-H
beats UCP on all 32-core mixes and most quad mixes, with Q7 the headline
(~50% over LRU); PIPP wins a few cache-friendly quad mixes (Q5/Q6/Q8/Q14)
but collapses at 32 cores.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.experiments.common import Progress, compare_schemes, format_table
from repro.experiments.configs import machine
from repro.experiments.options import experiment_run
from repro.metrics import geomean
from repro.workloads.mixes import mixes_for_cores

__all__ = ["run", "format_result"]

_SCHEMES = ["lru", "prism-h", "ucp", "pipp"]


def _panel(
    cores: int,
    instructions: Optional[int],
    mixes: Optional[List[str]],
    seed: int,
    progress: Progress,
) -> Dict:
    config = machine(cores)
    mix_names = mixes or mixes_for_cores(cores)
    results = compare_schemes(
        mix_names, config, _SCHEMES, instructions=instructions, seed=seed, progress=progress
    )
    rows = []
    for mix in mix_names:
        lru_antt = results[mix]["lru"].antt
        rows.append(
            {
                "mix": mix,
                "prism_h": results[mix]["prism-h"].antt / lru_antt,
                "ucp": results[mix]["ucp"].antt / lru_antt,
                "pipp": results[mix]["pipp"].antt / lru_antt,
            }
        )
    summary = {
        scheme: geomean([r[scheme] for r in rows]) for scheme in ("prism_h", "ucp", "pipp")
    }
    return {"cores": cores, "rows": rows, "geomean": summary}


@experiment_run
def run(
    instructions: Optional[int] = None,
    quad_mixes: Optional[List[str]] = None,
    big_mixes: Optional[List[str]] = None,
    seed: int = 0,
    progress: Progress = None,
) -> Dict:
    return {
        "id": "fig3",
        "quad": _panel(4, instructions, quad_mixes, seed, progress),
        "thirtytwo": _panel(32, instructions, big_mixes, seed, progress),
    }


def format_result(result: Dict) -> str:
    parts = []
    for key, title in (("quad", "Figure 3(a): quad-core"), ("thirtytwo", "Figure 3(b): 32-core")):
        panel = result[key]
        parts.append(f"{title} — ANTT normalised to LRU (lower = better)")
        table = [[r["mix"], r["prism_h"], r["ucp"], r["pipp"]] for r in panel["rows"]]
        table.append(
            ["geomean", panel["geomean"]["prism_h"], panel["geomean"]["ucp"], panel["geomean"]["pipp"]]
        )
        parts.append(format_table(["mix", "PriSM-H", "UCP", "PIPP"], table))
    return "\n".join(parts)
