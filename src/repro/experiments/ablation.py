"""Ablations of the repo's PriSM design choices (DESIGN.md §3).

Four switchable mechanisms separate this implementation from a literal
reading of the paper at 1/64 scale:

- the resampling victim-not-found fallback (vs the paper's first-candidate
  rule),
- the eviction-bias feedback correction,
- PriSM-H's knee-protection floor and thrash discount (vs pure Alg. 1),
- dense (1/2) shadow-tag sampling (vs the paper's ratio, 1/8 scaled).

Each variant runs PriSM-H on a slice of 16-core mixes; the table reports
geomean ANTT versus LRU (lower is better) so the contribution of every
mechanism at this scale is visible.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.experiments.common import Progress, format_table
from repro.experiments.configs import machine
from repro.experiments.runner import run_workload
from repro.metrics import geomean
from repro.workloads.mixes import mixes_for_cores

__all__ = ["VARIANTS", "run", "format_result"]

#: Variant name -> scheme_kwargs for the ``prism-h`` factory.
VARIANTS: Dict[str, dict] = {
    "default": {},
    "pure-alg1": {"pure": True},
    "paper-fallback": {"fallback": "paper"},
    "no-bias-feedback": {"bias_correction": False},
    "sparse-shadow": {"sample_shift": 3},
    "all-paper-literal": {"pure": True, "fallback": "paper", "bias_correction": False},
}


def run(
    instructions: Optional[int] = None,
    mixes: Optional[List[str]] = None,
    cores: int = 16,
    seed: int = 0,
    progress: Progress = None,
) -> Dict:
    config = machine(cores)
    mix_names = mixes or mixes_for_cores(cores)[:6]
    rows = []
    for mix in mix_names:
        if progress:
            progress(f"{mix} / lru")
        lru = run_workload(mix, config, "lru", seed=seed, instructions=instructions)
        row = {"mix": mix}
        for variant, kwargs in VARIANTS.items():
            if progress:
                progress(f"{mix} / prism-h[{variant}]")
            result = run_workload(
                mix,
                config,
                "prism-h",
                seed=seed,
                instructions=instructions,
                scheme_kwargs=dict(kwargs),
            )
            row[variant] = result.antt / lru.antt
        rows.append(row)
    summary = {
        variant: geomean([row[variant] for row in rows]) for variant in VARIANTS
    }
    return {"id": "ablation", "cores": cores, "rows": rows, "geomean": summary}


def format_result(result: Dict) -> str:
    variants = list(VARIANTS)
    headers = ["mix"] + variants
    table = [[row["mix"]] + [row[v] for v in variants] for row in result["rows"]]
    table.append(["geomean"] + [result["geomean"][v] for v in variants])
    return (
        f"Ablation of PriSM design choices at {result['cores']} cores "
        "(ANTT vs LRU; lower = better)\n" + format_table(headers, table, width=17)
    )
