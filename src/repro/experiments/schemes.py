"""Scheme registry: name -> how to build the scheme + baseline policy.

Every experiment refers to schemes by these names; the registry keeps the
pairing between a management scheme and the baseline replacement policy it
must run on (e.g. the Vantage comparison pins both contenders to timestamp
LRU, and the Section 5.6 study pins PriSM-H to DIP).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence

from repro.cache.replacement import (
    DIPPolicy,
    LRUPolicy,
    PLRUPolicy,
    ReplacementPolicy,
    TimestampLRUPolicy,
)
from repro.core.allocation import (
    CliffAwarePolicy,
    FairnessPolicy,
    HitMaxPolicy,
    QOSPolicy,
    UCPExtendedPolicy,
)
from repro.core.prism import PrismScheme
from repro.partitioning import (
    FairWayPartitionScheme,
    PIPPScheme,
    TADIPPolicy,
    UCPScheme,
    VantageScheme,
    WayPartitionScheme,
)
from repro.partitioning.policy_waypart import AllocationWayPartitionScheme

__all__ = ["SchemeSpec", "SCHEMES", "build_scheme"]


@dataclass(frozen=True)
class SchemeSpec:
    """Recipe for one scheme configuration.

    Attributes:
        name: registry key.
        build: ``build(num_cores, standalone_ipcs, **kwargs)`` returning
            ``(scheme_or_None, baseline_policy)``.
        description: one-liner for reports.
    """

    name: str
    build: Callable
    description: str


def _lru(num_cores: int, standalone_ipcs, **kwargs):
    return None, LRUPolicy()


def _prism_h(num_cores: int, standalone_ipcs, **kwargs):
    # Allocation-policy knobs (ablations) ride along in scheme_kwargs.
    policy = HitMaxPolicy(
        pure=kwargs.pop("pure", False),
        protect_cap_mult=kwargs.pop("protect_cap_mult", 1.5),
        thrash_discount=kwargs.pop("thrash_discount", 0.25),
    )
    return PrismScheme(policy, **kwargs), LRUPolicy()


def _prism_f(num_cores: int, standalone_ipcs, **kwargs):
    return PrismScheme(FairnessPolicy(), **kwargs), LRUPolicy()


def _prism_q(num_cores: int, standalone_ipcs, **kwargs):
    fraction = kwargs.pop("target_ipc_fraction", 0.8)
    qos_core = kwargs.pop("qos_core", 0)
    if standalone_ipcs is None:
        raise ValueError("prism-q needs stand-alone IPCs to set its target")
    target = fraction * standalone_ipcs[qos_core]
    return PrismScheme(QOSPolicy(target, qos_core=qos_core), **kwargs), LRUPolicy()


def _cliff(num_cores: int, standalone_ipcs, **kwargs):
    policy = CliffAwarePolicy(
        reserve_fraction=kwargs.pop("reserve_fraction", 0.05)
    )
    return PrismScheme(policy, **kwargs), LRUPolicy()


def _ucp(num_cores: int, standalone_ipcs, **kwargs):
    return UCPScheme(**kwargs), LRUPolicy()


def _pipp(num_cores: int, standalone_ipcs, **kwargs):
    return PIPPScheme(**kwargs), LRUPolicy()


def _fair_waypart(num_cores: int, standalone_ipcs, **kwargs):
    return FairWayPartitionScheme(**kwargs), LRUPolicy()


def _waypart_static(num_cores: int, standalone_ipcs, **kwargs):
    return WayPartitionScheme(**kwargs), LRUPolicy()


def _waypart_hitmax(num_cores: int, standalone_ipcs, **kwargs):
    return AllocationWayPartitionScheme(HitMaxPolicy(), **kwargs), LRUPolicy()


def _waypart_fair_alloc(num_cores: int, standalone_ipcs, **kwargs):
    return AllocationWayPartitionScheme(FairnessPolicy(), **kwargs), LRUPolicy()


def _tslru(num_cores: int, standalone_ipcs, **kwargs):
    return None, TimestampLRUPolicy()


def _plru(num_cores: int, standalone_ipcs, **kwargs):
    return None, PLRUPolicy()


def _belady(num_cores: int, standalone_ipcs, **kwargs):
    # The offline optimal baseline replays a recorded trace through
    # repro.check.belady (run_workload dispatches on the name); the LRU
    # policy here only drives the recording run and the stand-alone
    # IPC^SP baselines.
    return None, LRUPolicy()


def _vantage(num_cores: int, standalone_ipcs, **kwargs):
    return VantageScheme(**kwargs), TimestampLRUPolicy()


def _prism_ucpx(num_cores: int, standalone_ipcs, **kwargs):
    granularity = kwargs.pop("granularity", 4)
    return (
        PrismScheme(UCPExtendedPolicy(granularity=granularity), **kwargs),
        TimestampLRUPolicy(),
    )


def _dip(num_cores: int, standalone_ipcs, **kwargs):
    return None, DIPPolicy(**kwargs)


def _prism_h_dip(num_cores: int, standalone_ipcs, **kwargs):
    return PrismScheme(HitMaxPolicy(), **kwargs), DIPPolicy()


def _tadip(num_cores: int, standalone_ipcs, **kwargs):
    return None, TADIPPolicy(num_cores, **kwargs)


SCHEMES: Dict[str, SchemeSpec] = {
    spec.name: spec
    for spec in [
        SchemeSpec("lru", _lru, "unmanaged LRU baseline"),
        SchemeSpec("prism-h", _prism_h, "PriSM hit-maximisation (Alg. 1)"),
        SchemeSpec("prism-f", _prism_f, "PriSM fairness (Alg. 2)"),
        SchemeSpec("prism-q", _prism_q, "PriSM QoS (Alg. 3)"),
        SchemeSpec("cliff", _cliff,
                   "Memshare-style cliff-aware greedy (reserved + lookahead)"),
        SchemeSpec("ucp", _ucp, "UCP: UMON + lookahead over way quotas [14]"),
        SchemeSpec("pipp", _pipp, "PIPP insertion/promotion pseudo-partitioning [20]"),
        SchemeSpec("fair-waypart", _fair_waypart, "way-partitioning fairness [9]"),
        SchemeSpec("waypart", _waypart_static, "static equal way quotas"),
        SchemeSpec("waypart-hitmax", _waypart_hitmax, "Alg. 1 targets rounded to ways (Fig. 5)"),
        SchemeSpec("waypart-fair", _waypart_fair_alloc, "Alg. 2 targets rounded to ways"),
        SchemeSpec("tslru", _tslru, "unmanaged timestamp-LRU baseline (Fig. 7)"),
        SchemeSpec("plru", _plru, "unmanaged tree pseudo-LRU (hierarchy baseline)"),
        SchemeSpec("belady", _belady,
                   "offline Belady/MIN optimal on the recorded post-L1 trace"),
        SchemeSpec("vantage", _vantage, "set-associative Vantage + extended UCP [17]"),
        SchemeSpec("prism-ucpx", _prism_ucpx, "PriSM + extended UCP on timestamp LRU (Fig. 7)"),
        SchemeSpec("dip", _dip, "unmanaged DIP baseline [13]"),
        SchemeSpec("prism-h-dip", _prism_h_dip, "PriSM-H over DIP replacement (Sec. 5.6)"),
        SchemeSpec("tadip", _tadip, "thread-aware DIP [7]"),
    ]
}


def build_scheme(
    name: str,
    num_cores: int,
    standalone_ipcs: Optional[Sequence[float]] = None,
    **kwargs,
):
    """Instantiate ``(scheme_or_None, baseline_policy)`` by registry name.

    Raises:
        KeyError: for unknown scheme names (message lists known names).
    """
    try:
        spec = SCHEMES[name]
    except KeyError:
        raise KeyError(f"unknown scheme {name!r}; known: {sorted(SCHEMES)}") from None
    return spec.build(num_cores, standalone_ipcs, **kwargs)
