"""Figure 13 — Victim-not-found rate vs interval length (quad).

The fraction of replacements where the sampled victim core held no block
in the accessed set, for interval lengths of N/2, N and 2N misses (the
paper sweeps 32K/64K/128K at N=64K blocks — the same x2 ladder around the
default W = N). Paper: the fraction falls from 3.8% to 2.5% as the
interval grows, because a longer interval smooths the sampled distribution
toward steady-state occupancy.

This figure characterises the *paper's* mechanism, so the runs use the
paper-literal configuration (first-candidate fallback, no bias feedback);
the repo's default resampling fallback deliberately changes what a
"not-found" event does, which would make the measurement incomparable.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.common import Progress, format_table
from repro.experiments.configs import machine
from repro.experiments.options import experiment_run
from repro.experiments.runner import run_workload
from repro.workloads.mixes import mixes_for_cores

__all__ = ["run", "format_result"]


@experiment_run
def run(
    instructions: Optional[int] = None,
    mixes: Optional[List[str]] = None,
    interval_multipliers: Sequence[float] = (0.5, 1.0, 2.0),
    seed: int = 0,
    progress: Progress = None,
) -> Dict:
    config = machine(4)
    num_blocks = config.geometry.num_blocks
    mix_names = mixes or mixes_for_cores(4)
    rows = []
    for mix in mix_names:
        row = {"mix": mix}
        for mult in interval_multipliers:
            interval = max(1, int(num_blocks * mult))
            if progress:
                progress(f"{mix} / prism-h W={interval}")
            result = run_workload(
                mix,
                config,
                "prism-h",
                seed=seed,
                instructions=instructions,
                scheme_kwargs={
                    "interval_len": interval,
                    "fallback": "paper",
                    "bias_correction": False,
                },
            )
            row[f"w{mult}"] = result.victim_not_found_rate
        rows.append(row)
    averages = {
        f"w{mult}": sum(r[f"w{mult}"] for r in rows) / len(rows)
        for mult in interval_multipliers
    }
    return {
        "id": "fig13",
        "num_blocks": num_blocks,
        "interval_multipliers": list(interval_multipliers),
        "rows": rows,
        "average": averages,
    }


def format_result(result: Dict) -> str:
    mults = result["interval_multipliers"]
    n = result["num_blocks"]
    headers = ["mix"] + [f"W={int(n * m)}" for m in mults]
    table = [[r["mix"]] + [r[f"w{m}"] for m in mults] for r in result["rows"]]
    table.append(["average"] + [result["average"][f"w{m}"] for m in mults])
    return (
        "Figure 13: fraction of replacements with no block of the selected core\n"
        + format_table(headers, table)
    )
