"""Figure 7 — PriSM vs Vantage on set-associative caches.

Both contenders run the extended-UCP allocation policy over the coarse
timestamp-LRU baseline (Section 5.3's level playing field); ANTT is
normalised to the unmanaged timestamp-LRU cache. Paper: PriSM wins most
quad mixes (all but Q12/Q17/Q19/Q20) and every 16-core mix, by 7.8% and
11.8% on average.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.experiments.common import Progress, compare_schemes, format_table
from repro.experiments.configs import machine
from repro.experiments.options import experiment_run
from repro.metrics import geomean
from repro.workloads.mixes import mixes_for_cores

__all__ = ["run", "format_result"]


def _panel(
    cores: int,
    instructions: Optional[int],
    mixes: Optional[List[str]],
    seed: int,
    progress: Progress,
) -> Dict:
    config = machine(cores)
    mix_names = mixes or mixes_for_cores(cores)
    results = compare_schemes(
        mix_names,
        config,
        ["tslru", "vantage", "prism-ucpx"],
        instructions=instructions,
        seed=seed,
        progress=progress,
    )
    rows = []
    for mix in mix_names:
        base = results[mix]["tslru"].antt
        rows.append(
            {
                "mix": mix,
                "vantage": results[mix]["vantage"].antt / base,
                "prism": results[mix]["prism-ucpx"].antt / base,
                "vantage_forced": results[mix]["vantage"].forced_evictions or 0,
            }
        )
    return {
        "cores": cores,
        "rows": rows,
        "geomean": {
            "vantage": geomean([r["vantage"] for r in rows]),
            "prism": geomean([r["prism"] for r in rows]),
        },
        "results": results,
    }


@experiment_run
def run(
    instructions: Optional[int] = None,
    quad_mixes: Optional[List[str]] = None,
    sixteen_mixes: Optional[List[str]] = None,
    seed: int = 0,
    progress: Progress = None,
) -> Dict:
    return {
        "id": "fig7",
        "quad": _panel(4, instructions, quad_mixes, seed, progress),
        "sixteen": _panel(16, instructions, sixteen_mixes, seed, progress),
    }


def format_result(result: Dict) -> str:
    parts = []
    for key, title in (("quad", "Figure 7 quad-core"), ("sixteen", "Figure 7 sixteen-core")):
        panel = result[key]
        parts.append(f"{title} — ANTT normalised to timestamp-LRU (lower = better)")
        table = [[r["mix"], r["vantage"], r["prism"]] for r in panel["rows"]]
        table.append(["geomean", panel["geomean"]["vantage"], panel["geomean"]["prism"]])
        parts.append(format_table(["mix", "Vantage", "PriSM"], table))
    return "\n".join(parts)
