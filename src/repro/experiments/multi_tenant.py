"""The multi-tenant web-cache scenario: PriSM as a memcached partitioner.

Runs one tenant workload (default: the 8-tenant ``web8`` Zipfian+scan
mix) under a panel of schemes — unmanaged LRU, the Memshare-style
cliff-aware greedy baseline, and PriSM-H/F/Q — and reports the
per-tenant SLO scorecard: hit rate vs solo hit rate, SLO-attainment
fraction, p99 miss-run length, and Jain fairness over normalised
service. See ``docs/tenancy.md`` for the tenant→core mapping and metric
definitions.

Runs fan out through :func:`~repro.experiments.parallel.run_specs`, so
``--jobs`` parallelises the scheme panel and a ``--store`` makes the
sweep resumable with zero recomputation (tenant workload identities are
part of the campaign fingerprint).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.experiments.common import Progress, format_table
from repro.experiments.configs import machine
from repro.experiments.options import experiment_run
from repro.experiments.parallel import RunSpec, run_specs
from repro.workloads.registry import resolve_workload

__all__ = ["run", "format_result", "DEFAULT_SCHEMES"]

#: The scheme panel the scenario compares by default.
DEFAULT_SCHEMES = ("lru", "cliff", "prism-h", "prism-f", "prism-q")


@experiment_run
def run(
    instructions: Optional[int] = None,
    workload: str = "web8",
    schemes: Sequence[str] = DEFAULT_SCHEMES,
    scale_factor: int = 64,
    backend: str = "classic",
    seed: int = 0,
    progress: Progress = None,
) -> Dict:
    """Run the tenant scenario; returns a dict of per-tenant SLO rows.

    Args:
        instructions: total shared request budget (``None`` = the
            machine default).
        workload: tenant preset name (``"web8"``, ``"smoke4"``) or a
            full ``"tenants:<preset>"`` reference.
        schemes: scheme registry names to compare.
        scale_factor: cache scaling divisor (as everywhere else).
        backend: cache engine for every run (results are bit-exact
            either way).
        seed: top-level trace/scheme seed.
    """
    ref = workload if ":" in workload else f"tenants:{workload}"
    source = resolve_workload(ref)
    config = machine(source.num_cores, scale_factor=scale_factor)
    schemes = list(schemes)
    specs = [
        RunSpec(
            mix=ref,
            scheme=scheme,
            seed=seed,
            instructions=instructions,
            backend=backend,
        )
        for scheme in schemes
    ]
    if progress:
        progress(f"{ref}: {len(specs)} runs under {', '.join(schemes)}")
    results = run_specs(specs, config, progress=progress)

    rows = []
    summary = []
    for scheme, result in zip(schemes, results):
        slo = result.tenant_slo
        for t, tenant in enumerate(slo.tenants):
            rows.append(
                {
                    "scheme": scheme,
                    "tenant": tenant,
                    "requests": slo.requests[t],
                    "hit_rate": slo.hit_rates[t],
                    "solo_hit_rate": slo.solo_hit_rates[t],
                    "slo_target": slo.slo_targets[t],
                    "slo_attainment": slo.slo_attainment[t],
                    "p99_miss_run": slo.p99_miss_run[t],
                    "occupancy": result.cores[t].occupancy_at_finish,
                }
            )
        total_requests = sum(slo.requests)
        total_hits = sum(c.hits for c in result.cores)
        summary.append(
            {
                "scheme": scheme,
                "hit_rate": total_hits / total_requests if total_requests else 0.0,
                "slo_attainment": (
                    sum(slo.slo_attainment) / len(slo.slo_attainment)
                ),
                "fairness": slo.fairness,
                "antt": result.antt,
                "intervals": result.intervals,
            }
        )
    return {
        "id": "tenants",
        "workload": ref,
        "tenants": source.tenant_names,
        "cores": source.num_cores,
        "schemes": schemes,
        "slo_fraction": results[0].tenant_slo.slo_fraction,
        "rows": rows,
        "summary": {"rows": summary},
    }


def format_result(result: Dict) -> str:
    lines = [
        f"Multi-tenant web cache: {result['workload']} "
        f"({result['cores']} tenants), SLO = "
        f"{result['slo_fraction']:.0%} of solo hit rate"
    ]
    summary_rows = [
        [
            r["scheme"],
            r["hit_rate"],
            r["slo_attainment"],
            r["fairness"],
            r["antt"],
            r["intervals"],
        ]
        for r in result["summary"]["rows"]
    ]
    lines.append(format_table(
        ["scheme", "hit-rate", "SLO-attain", "fairness", "ANTT", "intervals"],
        summary_rows,
        width=12,
    ))
    for scheme in result["schemes"]:
        scheme_rows = [r for r in result["rows"] if r["scheme"] == scheme]
        lines.append(f"\nscheme {scheme}: per-tenant SLO scorecard")
        lines.append(format_table(
            ["tenant", "requests", "hit-rate", "solo-rate", "target",
             "SLO-attain", "p99-missrun", "occupancy"],
            [
                [
                    r["tenant"],
                    r["requests"],
                    r["hit_rate"],
                    r["solo_hit_rate"],
                    r["slo_target"],
                    r["slo_attainment"],
                    r["p99_miss_run"],
                    r["occupancy"],
                ]
                for r in scheme_rows
            ],
            width=12,
        ))
    return "\n".join(lines)
