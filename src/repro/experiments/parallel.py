"""Parallel experiment executor: fan (mix, scheme, seed) runs over processes.

The simulator is single-threaded pure Python, but every figure in the
paper's evaluation is an *embarrassingly parallel* grid of independent
``run_workload`` calls — mixes × schemes (× seeds for the noise sweeps).
This module executes such grids over a ``multiprocessing`` pool while
keeping the results **bit-identical to a serial run**:

- Every run's randomness derives from the spec itself:
  :func:`~repro.experiments.runner.run_workload` seeds its streams with
  ``derive_seed(seed, "shared", mix, scheme)`` and its stand-alone
  baselines with fixed salts, so a run's outcome depends only on its
  ``RunSpec`` — never on scheduling order or which worker executes it.
- Results are reassembled by submission index, so callers observe the
  exact ordering a serial loop would have produced.

Workers are started with the ``fork`` context where available, so they
inherit the parent's imported modules (no re-import cost per worker), and
each worker keeps the runner's memoised stand-alone IPC cache warm across
every spec it executes — the ``IPC^SP`` baselines are computed at most
once per (profile, geometry, policy) per worker.

``jobs`` semantics (shared by every entry point that accepts ``jobs=``):

- ``None`` — consult the ``REPRO_JOBS`` environment variable (the CLI's
  ``--jobs`` flag and ``examples/reproduce_paper.py --jobs`` set it, which
  is how the figure experiments deep inside the registry pick the value
  up without threading a parameter through every signature); unset or
  invalid means serial.
- ``<= 0`` — use ``os.cpu_count()``.
- ``1`` — run serially in-process (no pool, no pickling).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

from repro.experiments.configs import MachineConfig
from repro.experiments.runner import WorkloadResult, run_workload

__all__ = ["RunSpec", "resolve_jobs", "run_specs", "parallel_compare_schemes"]

#: Environment variable consulted when ``jobs`` is ``None``.
JOBS_ENV = "REPRO_JOBS"


@dataclass(frozen=True)
class RunSpec:
    """One independent workload run: the unit the pool distributes.

    Attributes mirror :func:`~repro.experiments.runner.run_workload`'s
    signature; a spec must be picklable (mix names or benchmark-name
    sequences, not live simulator objects).
    """

    mix: Union[str, Sequence[str]]
    scheme: str = "lru"
    seed: int = 0
    instructions: Optional[int] = None
    scheme_kwargs: Optional[dict] = None
    #: Record per-interval telemetry into the result. The samples are
    #: deterministic dataclasses, so they pickle back from workers and a
    #: parallel trace stays bit-identical to the serial one.
    telemetry: bool = False

    def describe(self) -> str:
        return f"{self.mix} / {self.scheme} / seed {self.seed}"


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Resolve a ``jobs`` argument to a concrete worker count (>= 1)."""
    if jobs is None:
        try:
            jobs = int(os.environ.get(JOBS_ENV, "1"))
        except ValueError:
            jobs = 1
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    return jobs


# -- worker side ------------------------------------------------------------

#: The machine config, installed once per worker by the pool initializer so
#: it is not re-pickled with every task.
_worker_config: Optional[MachineConfig] = None


def _init_worker(config: MachineConfig) -> None:
    global _worker_config
    _worker_config = config


def _run_indexed_spec(item):
    index, spec = item
    result = run_workload(
        spec.mix,
        _worker_config,
        spec.scheme,
        seed=spec.seed,
        instructions=spec.instructions,
        scheme_kwargs=spec.scheme_kwargs,
        telemetry=spec.telemetry,
    )
    return index, result


# -- driver side ------------------------------------------------------------


def _pool_context():
    import multiprocessing

    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def run_specs(
    specs: Sequence[RunSpec],
    config: MachineConfig,
    jobs: Optional[int] = None,
    progress=None,
) -> List[WorkloadResult]:
    """Execute every spec and return results in spec order.

    Args:
        specs: the runs to execute (see :class:`RunSpec`).
        config: machine shared by every run.
        jobs: worker processes (see module docstring for the resolution
            rules). ``1`` executes serially in-process.
        progress: optional ``callable(str)`` invoked as runs complete.

    Returns:
        ``results[i]`` is the outcome of ``specs[i]`` — identical, field
        for field, to what a serial ``run_workload`` loop would produce.
    """
    specs = list(specs)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(specs) <= 1:
        results = []
        for spec in specs:
            if progress:
                progress(spec.describe())
            results.append(
                run_workload(
                    spec.mix,
                    config,
                    spec.scheme,
                    seed=spec.seed,
                    instructions=spec.instructions,
                    scheme_kwargs=spec.scheme_kwargs,
                    telemetry=spec.telemetry,
                )
            )
        return results

    results: List[Optional[WorkloadResult]] = [None] * len(specs)
    done = 0
    ctx = _pool_context()
    with ctx.Pool(
        processes=min(jobs, len(specs)),
        initializer=_init_worker,
        initargs=(config,),
    ) as pool:
        # Unordered completion for throughput; the index restores spec
        # order so parallel output is indistinguishable from serial.
        for index, result in pool.imap_unordered(
            _run_indexed_spec, list(enumerate(specs))
        ):
            results[index] = result
            done += 1
            if progress:
                progress(f"[{done}/{len(specs)}] {specs[index].describe()}")
    return results  # type: ignore[return-value]


def parallel_compare_schemes(
    mixes: Sequence[str],
    config: MachineConfig,
    schemes: Sequence[str],
    instructions: Optional[int] = None,
    seed: int = 0,
    scheme_kwargs: Optional[Dict[str, dict]] = None,
    progress=None,
    jobs: Optional[int] = None,
    telemetry: bool = False,
) -> Dict[str, Dict[str, WorkloadResult]]:
    """The (mixes × schemes) grid behind every figure, executed by the pool.

    Same signature and return shape as
    :func:`repro.experiments.common.compare_schemes` (which delegates here
    when ``jobs`` resolves above 1): ``results[mix][scheme]``.
    """
    scheme_kwargs = scheme_kwargs or {}
    specs = [
        RunSpec(
            mix=mix,
            scheme=scheme,
            seed=seed,
            instructions=instructions,
            scheme_kwargs=scheme_kwargs.get(scheme),
            telemetry=telemetry,
        )
        for mix in mixes
        for scheme in schemes
    ]
    flat = run_specs(specs, config, jobs=jobs, progress=progress)
    results: Dict[str, Dict[str, WorkloadResult]] = {mix: {} for mix in mixes}
    for spec, result in zip(specs, flat):
        results[spec.mix][spec.scheme] = result
    return results
