"""Parallel experiment executor: fan (mix, scheme, seed) runs over processes.

The simulator is single-threaded pure Python, but every figure in the
paper's evaluation is an *embarrassingly parallel* grid of independent
``run_workload`` calls — mixes × schemes (× seeds for the noise sweeps).
This module executes such grids over a ``multiprocessing`` pool while
keeping the results **bit-identical to a serial run**:

- Every run's randomness derives from the spec itself:
  :func:`~repro.experiments.runner.run_workload` seeds its streams with
  ``derive_seed(seed, "shared", mix, scheme)`` and its stand-alone
  baselines with fixed salts, so a run's outcome depends only on its
  ``RunSpec`` — never on scheduling order or which worker executes it.
- Results are reassembled by submission index, so callers observe the
  exact ordering a serial loop would have produced.

Workers are started with the ``fork`` context where available, so they
inherit the parent's imported modules (no re-import cost per worker), and
each worker keeps the runner's memoised stand-alone IPC cache warm across
every spec it executes — the ``IPC^SP`` baselines are computed at most
once per (profile, geometry, policy) per worker.

``jobs`` semantics (shared by every entry point that accepts ``jobs=``):

- ``None`` — consult the ``REPRO_JOBS`` environment variable (the CLI's
  ``--jobs`` flag and ``examples/reproduce_paper.py --jobs`` set it, which
  is how the figure experiments deep inside the registry pick the value
  up without threading a parameter through every signature); unset or
  invalid means serial.
- ``<= 0`` — use ``os.cpu_count()``.
- ``1`` — run serially in-process (no pool, no pickling).
"""

from __future__ import annotations

import os
import time
import traceback
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.experiments.configs import MachineConfig
from repro.experiments.runner import WorkloadResult, run_workload

__all__ = [
    "RunSpec",
    "SpecRunError",
    "resolve_jobs",
    "run_specs",
    "parallel_compare_schemes",
]

#: Environment variable consulted when ``jobs`` is ``None``.
JOBS_ENV = "REPRO_JOBS"

#: Environment variable consulted when ``store`` is ``None``: a path to a
#: :class:`repro.campaign.ResultStore` directory. When set, every
#: ``run_specs`` grid (and therefore every figure experiment) skips specs
#: whose fingerprint the store already holds and persists new results as
#: they complete. Set by ``repro-sim --store`` and
#: ``examples/reproduce_paper.py --store``.
STORE_ENV = "REPRO_STORE"


@dataclass(frozen=True)
class RunSpec:
    """One independent workload run: the unit the pool distributes.

    Attributes mirror :func:`~repro.experiments.runner.run_workload`'s
    signature; a spec must be picklable (mix names or benchmark-name
    sequences, not live simulator objects).
    """

    mix: Union[str, Sequence[str]]
    scheme: str = "lru"
    seed: int = 0
    instructions: Optional[int] = None
    scheme_kwargs: Optional[dict] = None
    #: Record per-interval telemetry into the result. The samples are
    #: deterministic dataclasses, so they pickle back from workers and a
    #: parallel trace stays bit-identical to the serial one.
    telemetry: bool = False
    #: Run with the cache-engine invariant checker attached
    #: (:func:`repro.check.attach_checker`). Observing only — a checked
    #: run produces the same result as an unchecked one, or raises
    #: :class:`~repro.check.InvariantViolation`.
    check: bool = False
    #: Cache engine, ``"classic"`` or ``"vector"``. The backends are
    #: certified bit-exact (``repro-sim check fuzz --backend vector``),
    #: so this is a speed knob only — campaign fingerprints exclude it
    #: and a stored result satisfies a spec under either backend.
    backend: str = "classic"
    #: Cluster-granular management (shared-data workloads only): cap the
    #: number of accounting clusters (see :mod:`repro.clustering`).
    #: ``None`` = per-core management. Part of the campaign fingerprint —
    #: clustering changes results.
    clusters: Optional[int] = None

    def describe(self) -> str:
        text = f"{self.mix} / {self.scheme} / seed {self.seed}"
        if self.clusters is not None:
            text += f" / {self.clusters} clusters"
        return text


class SpecRunError(RuntimeError):
    """A run failed inside :func:`run_specs`, annotated with its spec.

    Raised instead of letting a worker's exception propagate raw out of
    ``imap_unordered`` with no indication of which grid cell died. The
    original exception is chained as ``__cause__`` on the serial path;
    on the pool path (where the original traceback cannot cross the
    process boundary) the worker's formatted traceback is kept in
    :attr:`worker_traceback`.
    """

    def __init__(
        self,
        spec: RunSpec,
        index: int,
        error_type: str,
        message: str,
        worker_traceback: str = "",
    ) -> None:
        self.spec = spec
        self.index = index
        self.error_type = error_type
        self.error_message = message
        self.worker_traceback = worker_traceback
        super().__init__(
            f"spec [{index}] ({spec.describe()}) failed: {error_type}: {message}"
        )


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Resolve a ``jobs`` argument to a concrete worker count (>= 1)."""
    if jobs is None:
        try:
            jobs = int(os.environ.get(JOBS_ENV, "1"))
        except ValueError:
            jobs = 1
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    return jobs


# -- worker side ------------------------------------------------------------

#: The machine config, installed once per worker by the pool initializer so
#: it is not re-pickled with every task.
_worker_config: Optional[MachineConfig] = None


def _init_worker(config: MachineConfig) -> None:
    global _worker_config
    _worker_config = config


def _run_indexed_spec(item):
    """Run one spec; report success or a picklable error description.

    Exceptions are returned, not raised: a raw exception out of
    ``imap_unordered`` carries no hint of which spec died, so the driver
    re-raises it as a :class:`SpecRunError` with the spec's context.
    """
    index, spec = item
    start = time.perf_counter()
    try:
        result = run_workload(
            spec.mix,
            _worker_config,
            spec.scheme,
            seed=spec.seed,
            instructions=spec.instructions,
            scheme_kwargs=spec.scheme_kwargs,
            telemetry=spec.telemetry,
            backend=spec.backend,
            clusters=spec.clusters,
        )
    except Exception as exc:
        return index, None, (type(exc).__name__, str(exc), traceback.format_exc()), 0.0
    return index, result, None, time.perf_counter() - start


# -- driver side ------------------------------------------------------------


def _pool_context():
    import multiprocessing

    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _resolve_store(store):
    """``store`` argument -> a ResultStore, or None (no caching layer).

    ``None`` consults the ``REPRO_STORE`` environment variable (mirroring
    the ``jobs``/``REPRO_JOBS`` convention); a string/path opens a store
    at that directory; a ready-made store object passes through.
    """
    if store is None:
        path = os.environ.get(STORE_ENV)
        if not path:
            return None
        store = path
    if isinstance(store, (str, os.PathLike)):
        from repro.campaign.store import ResultStore

        return ResultStore(store)
    return store


def _execute_specs(
    specs: Sequence[RunSpec],
    config: MachineConfig,
    jobs: Optional[int] = None,
    progress=None,
    on_result: Optional[Callable[[int, WorkloadResult, float], None]] = None,
) -> List[WorkloadResult]:
    """The execution core of :func:`run_specs` (no store layer).

    ``on_result(index, result, wall_seconds)`` fires in the driver as each
    run completes — the store layer uses it to persist incrementally, so
    an interrupted grid keeps everything that finished.
    """
    specs = list(specs)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(specs) <= 1:
        results = []
        for index, spec in enumerate(specs):
            if progress:
                progress(spec.describe())
            start = time.perf_counter()
            try:
                result = run_workload(
                    spec.mix,
                    config,
                    spec.scheme,
                    seed=spec.seed,
                    instructions=spec.instructions,
                    scheme_kwargs=spec.scheme_kwargs,
                    telemetry=spec.telemetry,
                    backend=spec.backend,
                    clusters=spec.clusters,
                )
            except Exception as exc:
                raise SpecRunError(
                    spec, index, type(exc).__name__, str(exc)
                ) from exc
            if on_result:
                on_result(index, result, time.perf_counter() - start)
            results.append(result)
        return results

    results: List[Optional[WorkloadResult]] = [None] * len(specs)
    done = 0
    ctx = _pool_context()
    with ctx.Pool(
        processes=min(jobs, len(specs)),
        initializer=_init_worker,
        initargs=(config,),
    ) as pool:
        # Unordered completion for throughput; the index restores spec
        # order so parallel output is indistinguishable from serial.
        for index, result, error, elapsed in pool.imap_unordered(
            _run_indexed_spec, list(enumerate(specs))
        ):
            if error is not None:
                error_type, message, worker_tb = error
                raise SpecRunError(
                    specs[index], index, error_type, message,
                    worker_traceback=worker_tb,
                )
            results[index] = result
            if on_result:
                on_result(index, result, elapsed)
            done += 1
            if progress:
                progress(f"[{done}/{len(specs)}] {specs[index].describe()}")
    return results  # type: ignore[return-value]


def _run_specs_stored(
    specs: Sequence[RunSpec],
    config: MachineConfig,
    store,
    jobs: Optional[int] = None,
    progress=None,
) -> List[WorkloadResult]:
    """Store-backed :func:`run_specs`: skip cached fingerprints, persist new.

    Pure caching layer — failures still raise :class:`SpecRunError` (the
    fault-*tolerant* contract lives in :mod:`repro.campaign.runner`).
    """
    from repro.campaign.fingerprint import spec_fingerprint
    from repro.campaign.runner import cache_hit

    fingerprints = [spec_fingerprint(spec, config) for spec in specs]
    cached = [cache_hit(store, fp, spec) for fp, spec in zip(fingerprints, specs)]
    pending: Dict[str, int] = {}  # fingerprint -> first index (dedup)
    for index, (fp, hit) in enumerate(zip(fingerprints, cached)):
        if hit is None and fp not in pending:
            pending[fp] = index
    pending_fps = list(pending)
    pending_specs = [specs[i] for i in pending.values()]
    if progress and len(pending_specs) < len(specs):
        progress(
            f"store: {len(specs) - len(pending_specs)}/{len(specs)} cached "
            f"({store.root})"
        )

    def persist(index: int, result: WorkloadResult, wall_seconds: float) -> None:
        store.add_result(
            pending_fps[index], pending_specs[index], result,
            wall_seconds=wall_seconds,
        )

    executed = _execute_specs(
        pending_specs, config, jobs=jobs, progress=progress, on_result=persist
    )
    by_fp = dict(zip(pending_fps, executed))
    return [
        hit if hit is not None else by_fp[fp]
        for fp, hit in zip(fingerprints, cached)
    ]


def run_specs(
    specs: Sequence[RunSpec],
    config: MachineConfig,
    jobs: Optional[int] = None,
    progress=None,
    store=None,
) -> List[WorkloadResult]:
    """Execute every spec and return results in spec order.

    Args:
        specs: the runs to execute (see :class:`RunSpec`).
        config: machine shared by every run.
        jobs: worker processes (see module docstring for the resolution
            rules). ``1`` executes serially in-process.
        progress: optional ``callable(str)`` invoked as runs complete.
        store: a :class:`repro.campaign.ResultStore` (or a path to one);
            specs whose fingerprint the store holds return the stored
            result without simulating, and fresh results persist into the
            store as they complete. ``None`` consults ``REPRO_STORE``.

    Returns:
        ``results[i]`` is the outcome of ``specs[i]`` — identical, field
        for field, to what a serial ``run_workload`` loop would produce
        (stored results round-trip exactly, so this holds across runs).

    Raises:
        SpecRunError: a run raised; the error names the failing spec and
            chains/embeds the worker's original traceback.
    """
    specs = list(specs)
    store = _resolve_store(store)
    if store is not None:
        return _run_specs_stored(specs, config, store, jobs=jobs, progress=progress)
    return _execute_specs(specs, config, jobs=jobs, progress=progress)


def parallel_compare_schemes(
    mixes: Sequence[str],
    config: MachineConfig,
    schemes: Sequence[str],
    instructions: Optional[int] = None,
    seed: int = 0,
    scheme_kwargs: Optional[Dict[str, dict]] = None,
    progress=None,
    jobs: Optional[int] = None,
    telemetry: bool = False,
    backend: str = "classic",
) -> Dict[str, Dict[str, WorkloadResult]]:
    """The (mixes × schemes) grid behind every figure, executed by the pool.

    Same signature and return shape as
    :func:`repro.experiments.common.compare_schemes` (which delegates here
    when ``jobs`` resolves above 1): ``results[mix][scheme]``.
    """
    scheme_kwargs = scheme_kwargs or {}
    specs = [
        RunSpec(
            mix=mix,
            scheme=scheme,
            seed=seed,
            instructions=instructions,
            scheme_kwargs=scheme_kwargs.get(scheme),
            telemetry=telemetry,
            backend=backend,
        )
        for mix in mixes
        for scheme in schemes
    ]
    flat = run_specs(specs, config, jobs=jobs, progress=progress)
    results: Dict[str, Dict[str, WorkloadResult]] = {mix: {} for mix in mixes}
    for spec, result in zip(specs, flat):
        results[spec.mix][spec.scheme] = result
    return results
