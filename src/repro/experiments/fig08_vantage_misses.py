"""Figure 8 — Per-benchmark misses: PriSM normalised to Vantage (quad).

For every quad mix, each benchmark's miss count under PriSM (extended UCP
over timestamp LRU) divided by its misses under Vantage. Paper: PriSM cuts
misses for at least three of the four programs in every quad mix.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.experiments.common import Progress, compare_schemes, format_table
from repro.experiments.configs import machine
from repro.experiments.options import experiment_run
from repro.workloads.mixes import mixes_for_cores

__all__ = ["run", "format_result"]


@experiment_run
def run(
    instructions: Optional[int] = None,
    mixes: Optional[List[str]] = None,
    seed: int = 0,
    progress: Progress = None,
) -> Dict:
    config = machine(4)
    mix_names = mixes or mixes_for_cores(4)
    results = compare_schemes(
        mix_names,
        config,
        ["vantage", "prism-ucpx"],
        instructions=instructions,
        seed=seed,
        progress=progress,
    )
    rows = []
    improved_counts = []
    for mix in mix_names:
        vantage = results[mix]["vantage"]
        prism = results[mix]["prism-ucpx"]
        improved = 0
        for core, name in enumerate(prism.benchmarks):
            v_misses = max(1, vantage.cores[core].misses)
            ratio = prism.cores[core].misses / v_misses
            if ratio <= 1.0:
                improved += 1
            rows.append(
                {"mix": mix, "core": core, "benchmark": name, "miss_ratio": ratio}
            )
        improved_counts.append(improved)
    return {
        "id": "fig8",
        "rows": rows,
        "mixes_with_3plus_improved": sum(1 for c in improved_counts if c >= 3),
        "total_mixes": len(mix_names),
    }


def format_result(result: Dict) -> str:
    table = [[r["mix"], r["benchmark"], r["miss_ratio"]] for r in result["rows"]]
    summary = (
        f"mixes where >=3 of 4 programs improved: "
        f"{result['mixes_with_3plus_improved']}/{result['total_mixes']}"
    )
    return (
        "Figure 8: misses under PriSM normalised to Vantage (<1 = fewer misses)\n"
        + format_table(["mix", "benchmark", "PriSM/Vantage"], table, width=14)
        + "\n"
        + summary
    )
