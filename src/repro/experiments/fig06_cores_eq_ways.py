"""Figure 6 — PriSM-H when cores == ways (16 cores on a 16-way cache).

Way-partitioning degenerates here (one way per core is the only option, so
the paper does not evaluate it); PriSM still partitions at block
granularity. Paper: PriSM-H beats LRU on every mix, +14.8% on average.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.experiments.common import Progress, compare_schemes, format_table
from repro.experiments.configs import machine
from repro.experiments.options import experiment_run
from repro.metrics import geomean
from repro.workloads.mixes import mixes_for_cores

__all__ = ["run", "format_result"]


@experiment_run
def run(
    instructions: Optional[int] = None,
    mixes: Optional[List[str]] = None,
    seed: int = 0,
    progress: Progress = None,
) -> Dict:
    # The paper's 8MB 16-way LLC, scaled like every other machine.
    config = machine(16, assoc=16, llc_bytes=8 << 20)
    mix_names = mixes or mixes_for_cores(16)
    results = compare_schemes(
        mix_names,
        config,
        ["lru", "prism-h"],
        instructions=instructions,
        seed=seed,
        progress=progress,
    )
    rows = [
        {"mix": mix, "prism_vs_lru": results[mix]["prism-h"].antt / results[mix]["lru"].antt}
        for mix in mix_names
    ]
    return {
        "id": "fig6",
        "geometry": str(config.geometry),
        "rows": rows,
        "geomean": geomean([r["prism_vs_lru"] for r in rows]),
    }


def format_result(result: Dict) -> str:
    table = [[r["mix"], r["prism_vs_lru"]] for r in result["rows"]]
    table.append(["geomean", result["geomean"]])
    return (
        f"Figure 6: PriSM-H on {result['geometry']} with 16 cores (ANTT vs LRU)\n"
        + format_table(["mix", "PriSM-H/LRU"], table)
    )
