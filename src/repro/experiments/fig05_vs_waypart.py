"""Figure 5 — Fine- vs coarse-grained enforcement of the *same* policy.

Algorithm 1's hit-max targets drive both PriSM's eviction probabilities
and a way-partitioner (targets rounded to whole ways). Sixteen-core
workloads; ANTT normalised to LRU. The paper: PriSM wins on every mix.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.experiments.common import Progress, compare_schemes, format_table
from repro.experiments.configs import machine
from repro.experiments.options import experiment_run
from repro.metrics import geomean
from repro.workloads.mixes import mixes_for_cores

__all__ = ["run", "format_result"]


@experiment_run
def run(
    instructions: Optional[int] = None,
    mixes: Optional[List[str]] = None,
    cores: int = 16,
    seed: int = 0,
    progress: Progress = None,
) -> Dict:
    config = machine(cores)
    mix_names = mixes or mixes_for_cores(cores)
    results = compare_schemes(
        mix_names,
        config,
        ["lru", "prism-h", "waypart-hitmax"],
        instructions=instructions,
        seed=seed,
        progress=progress,
    )
    rows = []
    for mix in mix_names:
        lru_antt = results[mix]["lru"].antt
        rows.append(
            {
                "mix": mix,
                "prism": results[mix]["prism-h"].antt / lru_antt,
                "waypart": results[mix]["waypart-hitmax"].antt / lru_antt,
            }
        )
    return {
        "id": "fig5",
        "cores": cores,
        "rows": rows,
        "geomean": {
            "prism": geomean([r["prism"] for r in rows]),
            "waypart": geomean([r["waypart"] for r in rows]),
        },
    }


def format_result(result: Dict) -> str:
    table = [[r["mix"], r["prism"], r["waypart"]] for r in result["rows"]]
    table.append(["geomean", result["geomean"]["prism"], result["geomean"]["waypart"]])
    return (
        f"Figure 5: Alg. 1 enforced by PriSM vs way-partitioning "
        f"({result['cores']}-core; ANTT vs LRU)\n"
        + format_table(["mix", "PriSM", "way-part"], table)
    )
