"""Workload runner: stand-alone baselines + shared runs + metrics.

``run_workload`` is the single entry point every figure reproduction uses:
it resolves a mix, obtains per-program stand-alone IPCs (cached — the
``IPC^SP`` runs are scheme-independent given a baseline policy), runs the
shared machine under the requested scheme, and reports the paper's
metrics. Stand-alone runs use the same baseline replacement policy as the
scheme under test (timestamp LRU for the Vantage comparison, DIP for the
Section 5.6 study), matching the paper's normalisation.

Workloads resolve through :func:`repro.workloads.resolve_workload`:
mix names, benchmark lists, and ``"family:spec"`` references
(``"tenants:web8"``) all work; tenant workloads dispatch to
:func:`repro.tenancy.run_tenant_workload`, which returns the same
:class:`WorkloadResult` with the ``tenant_slo`` scorecard attached.

Scheme diagnostics are reported as typed optional fields on
:class:`WorkloadResult` (``eviction_probabilities``, ``quotas``, ...).
Pass ``telemetry=True`` (or a pre-built recorder, or ``options=``
with :class:`~repro.experiments.options.RunOptions`) to attach a
:class:`~repro.telemetry.TelemetryRecorder` and get the full
per-interval trace in ``result.telemetry``.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

from repro.cache.backends import build_cache
from repro.cpu.memory import MemoryModel
from repro.cpu.system import CoreResult, MultiCoreSystem, run_standalone
from repro.experiments.configs import MachineConfig
from repro.experiments.schemes import build_scheme
from repro.metrics import antt, fairness, ipc_throughput, weighted_speedup
from repro.metrics.tenancy import TenantSLOReport
from repro.telemetry import RunTelemetry, TelemetryRecorder
from repro.util.rng import derive_seed
from repro.workloads.benchmark import BenchmarkProfile
from repro.workloads.registry import resolve_workload

__all__ = [
    "WorkloadResult",
    "run_workload",
    "standalone_ipcs",
    "StandaloneIPCCache",
    "DEFAULT_STANDALONE_CACHE",
]


class StandaloneIPCCache:
    """Memo for the ``IPC^SP`` stand-alone runs.

    Keys are ``(profile, geometry, policy-kind, controllers, instructions,
    scale)`` — everything a stand-alone run's IPC depends on — so one cache
    instance can safely serve any number of shared runs. The module-level
    :data:`DEFAULT_STANDALONE_CACHE` is used unless a caller (or a
    :class:`~repro.experiments.options.RunOptions`) supplies its own,
    which is how tests isolate themselves without reaching into module
    globals.
    """

    def __init__(self) -> None:
        self._ipcs: Dict[tuple, float] = {}

    def get(self, key: tuple) -> Optional[float]:
        return self._ipcs.get(key)

    def store(self, key: tuple, ipc: float) -> None:
        self._ipcs[key] = ipc

    def clear(self) -> None:
        self._ipcs.clear()

    def keys(self) -> List[tuple]:
        return list(self._ipcs)

    def __contains__(self, key: tuple) -> bool:
        return key in self._ipcs

    def __len__(self) -> int:
        return len(self._ipcs)


#: Process-wide default memo (fork-started pool workers inherit it warm).
DEFAULT_STANDALONE_CACHE = StandaloneIPCCache()


@dataclass
class WorkloadResult:
    """Everything a figure reproduction needs from one shared run.

    The scheme-diagnostic fields after ``intervals`` are optional: each is
    ``None`` unless the scheme under test exposes it (PriSM reports
    probabilities, way-partitioners report quotas, Vantage reports forced
    evictions/demotions). ``telemetry`` is populated only when the run was
    made with ``telemetry=`` enabled, and ``tenant_slo`` only for
    multi-tenant workloads (see :mod:`repro.tenancy`).
    """

    mix: str
    scheme: str
    benchmarks: List[str]
    cores: List[CoreResult]
    standalone: List[float]
    antt: float
    fairness: float
    throughput: float
    weighted_speedup: float
    intervals: int
    victim_not_found_rate: Optional[float] = None
    probability_stats: Optional[List[dict]] = None
    eviction_probabilities: Optional[List[float]] = None
    forced_evictions: Optional[int] = None
    demotions: Optional[int] = None
    quotas: Optional[List[int]] = None
    targets: Optional[List[float]] = None
    telemetry: Optional[RunTelemetry] = None
    tenant_slo: Optional[TenantSLOReport] = None

    def shared_ipcs(self) -> List[float]:
        return [c.ipc for c in self.cores]

    def misses(self) -> List[int]:
        return [c.misses for c in self.cores]

    def slowdown(self, core: int) -> float:
        """``IPC^MP / IPC^SP`` of one core (1 = no slowdown)."""
        return self.cores[core].ipc / self.standalone[core]


def _resolve_mix(mix: Union[str, Sequence]) -> tuple:
    """Deprecated: resolve through :func:`repro.workloads.resolve_workload`.

    The historical private helper, kept as a shim for callers that reached
    into it directly. Returns ``(label, profiles)`` like it always did.
    """
    warnings.warn(
        "_resolve_mix is deprecated; use repro.workloads.resolve_workload() "
        "and WorkloadSource.profiles() instead",
        DeprecationWarning,
        stacklevel=2,
    )
    source = resolve_workload(mix)
    return source.label, source.profiles()


def _standalone_policy_key(policy) -> str:
    """Cache key component for the baseline policy class + salient config."""
    return type(policy).__name__


def _machine_memory(config: MachineConfig) -> MemoryModel:
    """A fresh DRAM model matching ``config`` (controllers, banks, rows)."""
    return MemoryModel(
        num_controllers=config.num_controllers,
        banks_per_controller=getattr(config, "dram_banks", 1),
        row_blocks=getattr(config, "dram_row_blocks", 0),
    )


def _hierarchy_key(config: MachineConfig) -> tuple:
    """Memo-key component covering everything the hierarchy adds."""
    return (
        getattr(config, "l1_geometry", None),
        getattr(config, "l1_inclusive", False),
        getattr(config, "dram_banks", 1),
        getattr(config, "dram_row_blocks", 0),
    )


def standalone_ipcs(
    profiles: Sequence[BenchmarkProfile],
    config: MachineConfig,
    scheme: str = "lru",
    instructions: Optional[int] = None,
    cache: Optional[StandaloneIPCCache] = None,
) -> List[float]:
    """Per-program ``IPC^SP`` on the full cache (memoised).

    The stand-alone machine uses the full LLC of ``config``, its memory
    controllers, and the baseline policy the ``scheme`` registry entry
    pairs with the scheme under test. Results memoise into ``cache``
    (default: :data:`DEFAULT_STANDALONE_CACHE`).
    """
    instructions = instructions or config.instructions
    if cache is None:
        cache = DEFAULT_STANDALONE_CACHE
    results = []
    for profile in profiles:
        # A fresh policy instance per run (policies are stateful).
        _, policy = build_scheme(scheme, 1, [1.0])
        key = (
            profile.name,
            config.geometry,
            _standalone_policy_key(policy),
            config.num_controllers,
            instructions,
            config.workload_scale,
        ) + _hierarchy_key(config)
        ipc = cache.get(key)
        if ipc is None:
            core = run_standalone(
                profile,
                config.geometry,
                instructions,
                policy_factory=lambda policy=policy: policy,
                seed=derive_seed(777, "standalone", profile.name),
                scale=config.workload_scale,
                memory=_machine_memory(config),
                l1_geometry=config.l1_geometry,
                inclusive=config.l1_inclusive,
            )
            ipc = core.ipc
            cache.store(key, ipc)
        results.append(ipc)
    return results


def _scheme_diagnostics(scheme_obj) -> dict:
    """Scheme-specific diagnostics as typed WorkloadResult field values."""
    fields = {}
    if scheme_obj is None:
        return fields
    if hasattr(scheme_obj, "victim_not_found_rate"):
        fields["victim_not_found_rate"] = scheme_obj.victim_not_found_rate()
    if hasattr(scheme_obj, "probability_stats"):
        fields["probability_stats"] = scheme_obj.probability_stats()
    if hasattr(scheme_obj, "eviction_probabilities"):
        fields["eviction_probabilities"] = list(scheme_obj.eviction_probabilities)
    if hasattr(scheme_obj, "forced_evictions"):
        fields["forced_evictions"] = scheme_obj.forced_evictions
        fields["demotions"] = scheme_obj.demotions
    if hasattr(scheme_obj, "quotas"):
        fields["quotas"] = list(scheme_obj.quotas)
    if hasattr(scheme_obj, "targets"):
        fields["targets"] = list(scheme_obj.targets)
    return fields


def _run_belady(
    label: str,
    profiles: Sequence[BenchmarkProfile],
    config: MachineConfig,
    sp_ipcs: List[float],
    seed: int,
    instructions: int,
    check: bool,
) -> WorkloadResult:
    """The ``scheme="belady"`` path of :func:`run_workload`.

    Three steps: (1) run the machine under unmanaged LRU with
    ``record_trace=True`` to capture the post-L1 (LLC-visible) access
    stream; (2) replay that stream through the offline Belady/MIN cache;
    (3) reconstruct per-core timing in trace order
    (:func:`repro.check.belady.belady_workload_run`). With ``check=True``
    the recording run carries the invariant checker (including the
    inclusion invariant when the machine has an inclusive L1).
    """
    from repro.cache.cache import SharedCache
    from repro.cache.replacement.lru import LRUPolicy
    from repro.check.belady import belady_workload_run

    rec_cache = SharedCache(config.geometry, config.num_cores, policy=LRUPolicy())
    checker = None
    if check:
        from repro.check.invariants import attach_checker

        checker = attach_checker(rec_cache)
    system = MultiCoreSystem(
        rec_cache,
        profiles,
        seed=derive_seed(seed, "shared", label, "belady"),
        scale=config.workload_scale,
        memory=_machine_memory(config),
        l1_geometry=config.l1_geometry,
        inclusive=config.l1_inclusive,
        record_trace=True,
    )
    if checker is not None and config.l1_geometry is not None:
        checker.bind_hierarchy(system)
    system.run(instructions)
    if checker is not None:
        checker.check_now()
    result = belady_workload_run(
        system.recorded_trace,
        profiles,
        config.geometry,
        _machine_memory(config),
        instructions_per_core=instructions,
    )
    mp_ipcs = [c.ipc for c in result.cores]
    return WorkloadResult(
        mix=label,
        scheme="belady",
        benchmarks=[p.name for p in profiles],
        cores=result.cores,
        standalone=sp_ipcs,
        antt=antt(sp_ipcs, mp_ipcs),
        fairness=fairness(sp_ipcs, mp_ipcs),
        throughput=ipc_throughput(mp_ipcs),
        weighted_speedup=weighted_speedup(sp_ipcs, mp_ipcs),
        intervals=result.intervals,
    )


def run_workload(
    mix: Union[str, Sequence],
    config: MachineConfig,
    scheme: str = "lru",
    seed: int = 0,
    instructions: Optional[int] = None,
    scheme_kwargs: Optional[dict] = None,
    telemetry: Union[bool, TelemetryRecorder] = False,
    standalone_cache: Optional[StandaloneIPCCache] = None,
    options=None,
    check: bool = False,
    backend: str = "classic",
    clusters: Optional[int] = None,
) -> WorkloadResult:
    """Run one mix under one scheme and report the paper's metrics.

    Args:
        mix: a mix name (``"Q7"``), a sequence of benchmark
            names/profiles, a ``"family:spec"`` workload reference
            (``"tenants:web8"``), or a ready
            :class:`~repro.workloads.registry.WorkloadSource`.
        config: the machine (see :func:`repro.experiments.configs.machine`).
        scheme: registry name (see :data:`repro.experiments.schemes.SCHEMES`).
        seed: top-level seed for streams and scheme PRNGs.
        instructions: per-core target override.
        scheme_kwargs: forwarded to the scheme factory (e.g.
            ``{"probability_bits": 6}`` or ``{"target_ipc_fraction": 0.8}``).
        telemetry: ``True`` to record a per-interval trace into
            ``result.telemetry``, or a pre-built
            :class:`~repro.telemetry.TelemetryRecorder` (e.g. one carrying
            a streaming sink).
        standalone_cache: where to memoise the ``IPC^SP`` runs (default:
            the process-wide :data:`DEFAULT_STANDALONE_CACHE`).
        options: a :class:`~repro.experiments.options.RunOptions`; supplies
            ``seed``/``instructions``/``telemetry``/``standalone_cache``/
            ``check`` for any of those arguments left at its default above.
        check: attach the invariant checker
            (:func:`repro.check.attach_checker`) to the shared cache and
            audit it once more after the run; raises
            :class:`~repro.check.InvariantViolation` on any inconsistency.
        backend: cache engine, ``"classic"`` or ``"vector"``; results are
            certified bit-exact either way (``repro-sim check fuzz
            --backend vector``). Configurations the vector engine cannot
            represent fall back to classic with a ``RuntimeWarning``.
        clusters: cluster-granular management for shared-data workloads
            (see :mod:`repro.clustering`); raises for workload kinds
            that do not support it.
    """
    if options is not None:
        if seed == 0:
            seed = options.seed
        if instructions is None:
            instructions = options.instructions
        if telemetry is False:
            telemetry = options.telemetry
        if standalone_cache is None:
            standalone_cache = options.standalone_cache
        if check is False:
            check = options.check
        if backend == "classic":
            backend = getattr(options, "backend", "classic")
    source = resolve_workload(mix)
    if source.kind == "shared":
        # Shared-data scale-out workloads replay through the clustering
        # driver (the only path that understands ``clusters``).
        from repro.clustering.scaleout import run_shared_workload

        return run_shared_workload(
            source,
            config,
            scheme,
            seed=seed,
            instructions=instructions,
            scheme_kwargs=scheme_kwargs,
            telemetry=telemetry,
            standalone_cache=standalone_cache,
            check=check,
            backend=backend,
            clusters=clusters,
        )
    if clusters is not None:
        raise ValueError(
            f"clusters= applies to 'shared' workloads only; "
            f"{source.label!r} is kind {source.kind!r}"
        )
    if source.kind == "tenants":
        # Trace-based tenant workloads replay through the tenancy driver
        # (no timing model); imported lazily to keep the package acyclic.
        from repro.tenancy.run import run_tenant_workload

        return run_tenant_workload(
            source,
            config,
            scheme,
            seed=seed,
            instructions=instructions,
            scheme_kwargs=scheme_kwargs,
            telemetry=telemetry,
            standalone_cache=standalone_cache,
            check=check,
            backend=backend,
        )
    label, profiles = source.label, source.profiles()
    if len(profiles) != config.num_cores:
        raise ValueError(
            f"mix {label!r} has {len(profiles)} programs but the machine has "
            f"{config.num_cores} cores"
        )
    instructions = instructions or config.instructions
    sp_ipcs = standalone_ipcs(
        profiles, config, scheme=scheme, instructions=instructions,
        cache=standalone_cache,
    )

    if scheme == "belady":
        # Offline optimum: record a post-L1 trace under unmanaged LRU on
        # this machine, replay it through Belady/MIN, and reconstruct the
        # timing. Telemetry is not recorded on this path (there are no
        # allocation intervals to sample).
        return _run_belady(
            label, profiles, config, sp_ipcs, seed, instructions, check
        )

    scheme_obj, policy = build_scheme(
        scheme, config.num_cores, sp_ipcs, **(scheme_kwargs or {})
    )
    if check and backend != "classic":
        # The invariant checker audits the classic object model (it walks
        # CacheSet lists); a checked run always uses the classic engine.
        warnings.warn(
            "check=True audits the classic engine; ignoring backend="
            f"{backend!r} for this run",
            RuntimeWarning,
            stacklevel=2,
        )
        backend = "classic"
    cache, _ = build_cache(
        config.geometry,
        config.num_cores,
        policy=policy,
        scheme=scheme_obj,
        backend=backend,
    )
    checker = None
    if check:
        # Imported lazily: unchecked runs never touch the check package.
        from repro.check.invariants import attach_checker

        checker = attach_checker(cache)
    recorder: Optional[TelemetryRecorder] = None
    if telemetry:
        recorder = (
            telemetry if isinstance(telemetry, TelemetryRecorder) else TelemetryRecorder()
        )
    system = MultiCoreSystem(
        cache,
        profiles,
        seed=derive_seed(seed, "shared", label, scheme),
        scale=config.workload_scale,
        memory=_machine_memory(config),
        l1_geometry=config.l1_geometry,
        inclusive=config.l1_inclusive,
        telemetry=recorder,
    )
    if checker is not None and config.l1_geometry is not None:
        checker.bind_hierarchy(system)
    result = system.run(instructions)
    if checker is not None:
        checker.check_now()

    mp_ipcs = [c.ipc for c in result.cores]
    return WorkloadResult(
        mix=label,
        scheme=scheme,
        benchmarks=[p.name for p in profiles],
        cores=result.cores,
        standalone=sp_ipcs,
        antt=antt(sp_ipcs, mp_ipcs),
        fairness=fairness(sp_ipcs, mp_ipcs),
        throughput=ipc_throughput(mp_ipcs),
        weighted_speedup=weighted_speedup(sp_ipcs, mp_ipcs),
        intervals=result.intervals,
        telemetry=recorder.result() if recorder is not None else None,
        **_scheme_diagnostics(scheme_obj),
    )
