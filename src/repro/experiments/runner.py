"""Workload runner: stand-alone baselines + shared runs + metrics.

``run_workload`` is the single entry point every figure reproduction uses:
it resolves a mix, obtains per-program stand-alone IPCs (cached — the
``IPC^SP`` runs are scheme-independent given a baseline policy), runs the
shared machine under the requested scheme, and reports the paper's
metrics. Stand-alone runs use the same baseline replacement policy as the
scheme under test (timestamp LRU for the Vantage comparison, DIP for the
Section 5.6 study), matching the paper's normalisation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.cache.cache import SharedCache
from repro.cpu.memory import MemoryModel
from repro.cpu.system import CoreResult, MultiCoreSystem, run_standalone
from repro.experiments.configs import MachineConfig
from repro.experiments.schemes import build_scheme
from repro.metrics import antt, fairness, ipc_throughput, weighted_speedup
from repro.util.rng import derive_seed
from repro.workloads.benchmark import BenchmarkProfile
from repro.workloads.mixes import get_mix
from repro.workloads.spec import get_profile

__all__ = ["WorkloadResult", "run_workload", "standalone_ipcs", "clear_standalone_cache"]

#: (profile, geometry, policy-kind, controllers, instructions) -> IPC.
_STANDALONE_CACHE: Dict[tuple, float] = {}


def clear_standalone_cache() -> None:
    """Drop memoised stand-alone IPCs (tests use this for isolation)."""
    _STANDALONE_CACHE.clear()


@dataclass
class WorkloadResult:
    """Everything a figure reproduction needs from one shared run."""

    mix: str
    scheme: str
    benchmarks: List[str]
    cores: List[CoreResult]
    standalone: List[float]
    antt: float
    fairness: float
    throughput: float
    weighted_speedup: float
    intervals: int
    extra: dict = field(default_factory=dict)

    def shared_ipcs(self) -> List[float]:
        return [c.ipc for c in self.cores]

    def misses(self) -> List[int]:
        return [c.misses for c in self.cores]

    def slowdown(self, core: int) -> float:
        """``IPC^MP / IPC^SP`` of one core (1 = no slowdown)."""
        return self.cores[core].ipc / self.standalone[core]


def _resolve_mix(mix: Union[str, Sequence]) -> tuple:
    """Return (mix label, list of profiles)."""
    if isinstance(mix, str):
        names = get_mix(mix)
        return mix, [get_profile(n) for n in names]
    profiles = []
    for item in mix:
        profiles.append(item if isinstance(item, BenchmarkProfile) else get_profile(item))
    return "custom", profiles


def _standalone_policy_key(policy) -> str:
    """Cache key component for the baseline policy class + salient config."""
    return type(policy).__name__


def standalone_ipcs(
    profiles: Sequence[BenchmarkProfile],
    config: MachineConfig,
    scheme: str = "lru",
    instructions: Optional[int] = None,
) -> List[float]:
    """Per-program ``IPC^SP`` on the full cache (memoised).

    The stand-alone machine uses the full LLC of ``config``, its memory
    controllers, and the baseline policy the ``scheme`` registry entry
    pairs with the scheme under test.
    """
    instructions = instructions or config.instructions
    results = []
    for profile in profiles:
        # A fresh policy instance per run (policies are stateful).
        _, policy = build_scheme(scheme, 1, [1.0])
        key = (
            profile.name,
            config.geometry,
            _standalone_policy_key(policy),
            config.num_controllers,
            instructions,
            config.workload_scale,
        )
        if key not in _STANDALONE_CACHE:
            core = run_standalone(
                profile,
                config.geometry,
                instructions,
                policy_factory=lambda policy=policy: policy,
                num_controllers=config.num_controllers,
                seed=derive_seed(777, "standalone", profile.name),
                scale=config.workload_scale,
            )
            _STANDALONE_CACHE[key] = core.ipc
        results.append(_STANDALONE_CACHE[key])
    return results


def _collect_extras(scheme_obj) -> dict:
    """Pull scheme-specific diagnostics for the analysis figures."""
    extra = {}
    if scheme_obj is None:
        return extra
    if hasattr(scheme_obj, "victim_not_found_rate"):
        extra["victim_not_found_rate"] = scheme_obj.victim_not_found_rate()
    if hasattr(scheme_obj, "probability_stats"):
        extra["probability_stats"] = scheme_obj.probability_stats()
    if hasattr(scheme_obj, "eviction_probabilities"):
        extra["eviction_probabilities"] = list(scheme_obj.eviction_probabilities)
    if hasattr(scheme_obj, "forced_evictions"):
        extra["forced_evictions"] = scheme_obj.forced_evictions
        extra["demotions"] = scheme_obj.demotions
    if hasattr(scheme_obj, "quotas"):
        extra["quotas"] = list(scheme_obj.quotas)
    if hasattr(scheme_obj, "targets"):
        extra["targets"] = list(scheme_obj.targets)
    return extra


def run_workload(
    mix: Union[str, Sequence],
    config: MachineConfig,
    scheme: str = "lru",
    seed: int = 0,
    instructions: Optional[int] = None,
    scheme_kwargs: Optional[dict] = None,
) -> WorkloadResult:
    """Run one mix under one scheme and report the paper's metrics.

    Args:
        mix: a mix name (``"Q7"``), or a sequence of benchmark
            names/profiles.
        config: the machine (see :func:`repro.experiments.configs.machine`).
        scheme: registry name (see :data:`repro.experiments.schemes.SCHEMES`).
        seed: top-level seed for streams and scheme PRNGs.
        instructions: per-core target override.
        scheme_kwargs: forwarded to the scheme factory (e.g.
            ``{"probability_bits": 6}`` or ``{"target_ipc_fraction": 0.8}``).
    """
    label, profiles = _resolve_mix(mix)
    if len(profiles) != config.num_cores:
        raise ValueError(
            f"mix {label!r} has {len(profiles)} programs but the machine has "
            f"{config.num_cores} cores"
        )
    instructions = instructions or config.instructions
    sp_ipcs = standalone_ipcs(profiles, config, scheme=scheme, instructions=instructions)

    scheme_obj, policy = build_scheme(
        scheme, config.num_cores, sp_ipcs, **(scheme_kwargs or {})
    )
    cache = SharedCache(config.geometry, config.num_cores, policy=policy)
    if scheme_obj is not None:
        cache.set_scheme(scheme_obj)
    system = MultiCoreSystem(
        cache,
        profiles,
        seed=derive_seed(seed, "shared", label, scheme),
        scale=config.workload_scale,
        memory=MemoryModel(num_controllers=config.num_controllers),
    )
    result = system.run(instructions)

    mp_ipcs = [c.ipc for c in result.cores]
    return WorkloadResult(
        mix=label,
        scheme=scheme,
        benchmarks=[p.name for p in profiles],
        cores=result.cores,
        standalone=sp_ipcs,
        antt=antt(sp_ipcs, mp_ipcs),
        fairness=fairness(sp_ipcs, mp_ipcs),
        throughput=ipc_throughput(mp_ipcs),
        weighted_speedup=weighted_speedup(sp_ipcs, mp_ipcs),
        intervals=result.intervals,
        extra=_collect_extras(scheme_obj),
    )
