"""The paper's reported numbers, as structured data.

Single source of truth for every quantitative claim in the paper's
evaluation that this repository checks against (the "Paper reports"
column of EXPERIMENTS.md). Kept as data so benches, tests, and reports
can reference the same values without copy-paste drift.

Values are transcribed from the paper text; figure-only results without
stated numbers are summarised as trends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

__all__ = ["PaperClaim", "PAPER_CLAIMS", "claims_for"]


@dataclass(frozen=True)
class PaperClaim:
    """One quantitative claim from the paper."""

    experiment: str           # registry id (fig1..fig13, sec56)
    metric: str               # short slug
    value: Optional[float]    # the number, if the paper states one
    text: str                 # the claim as the paper words it


PAPER_CLAIMS: Tuple[PaperClaim, ...] = (
    PaperClaim("fig1", "ucp-degrades", None,
               "With larger core counts the performance benefits provided over "
               "LRU by UCP and PIPP reduces; PIPP performs worse than LRU at 32 cores"),
    PaperClaim("fig1", "fairness-degrades", None,
               "Going from 4 to 8 and then 16 cores reduces the overall fairness"),
    PaperClaim("fig1", "assoc-helps-ucp", None,
               "Increasing associativity and the resultant finer-grained control "
               "helps improve the performance of UCP"),
    PaperClaim("fig2", "prism-h-vs-lru-4c", 0.179, "PriSM-H gains 17.9% over LRU at 4 cores"),
    PaperClaim("fig2", "prism-h-vs-lru-8c", 0.165, "PriSM-H gains 16.5% over LRU at 8 cores"),
    PaperClaim("fig2", "prism-h-vs-lru-16c", 0.187, "PriSM-H gains 18.7% over LRU at 16 cores"),
    PaperClaim("fig2", "prism-h-vs-lru-32c", 0.127, "PriSM-H gains 12.7% over LRU at 32 cores"),
    PaperClaim("fig3", "q7-gain", 0.50, "Q7 shows as much as 50% gain over LRU"),
    PaperClaim("fig5", "prism-beats-waypart", None,
               "PriSM outperforms way-partitioning in all the sixteen core workloads"),
    PaperClaim("fig6", "cores-eq-ways-gain", 0.148,
               "Average gain of 14.8% over LRU with 16 cores on a 16-way cache"),
    PaperClaim("fig7", "vs-vantage-4c", 0.078, "PriSM beats Vantage by 7.8% on quad-core"),
    PaperClaim("fig7", "vs-vantage-16c", 0.118, "PriSM beats Vantage by 11.8% on 16-core"),
    PaperClaim("fig8", "miss-reduction", None,
               "PriSM reduces misses for at least three of the four benchmarks "
               "in all the quad-core workloads"),
    PaperClaim("fig9", "fairness-vs-waypart-16c", 0.233,
               "PriSM-F improves fairness by 23.3% over way-partitioning at 16 cores"),
    PaperClaim("fig9", "fairness-perf-bonus", 0.19,
               "PriSM-F improves performance by 19% compared to LRU"),
    PaperClaim("fig10", "qos-achievement", 38 / 41,
               "QoS targets achieved in 38 out of 41 workloads"),
    PaperClaim("fig11", "stability", None,
               "The measured standard deviation in the eviction probabilities is low"),
    PaperClaim("fig11", "recomputations-min", 199.0,
               "Probabilities are recomputed between 199 (Q2) and 1175 (Q5) times"),
    PaperClaim("fig12", "kbit-equivalence", None,
               "Performance with 6, 8, 10 and 12 bits is very similar to floating point"),
    PaperClaim("fig13", "notfound-32k", 0.038, "3.8% of replacements at 32K-miss intervals"),
    PaperClaim("fig13", "notfound-128k", 0.025, "2.5% of replacements at 128K-miss intervals"),
    PaperClaim("sec56", "prism-over-dip", 0.089, "PriSM-H over DIP improves performance by 8.9%"),
)


def claims_for(experiment: str) -> Tuple[PaperClaim, ...]:
    """All claims tied to one experiment id."""
    return tuple(c for c in PAPER_CLAIMS if c.experiment == experiment)
