"""Shared helpers for the per-figure experiment modules."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.experiments.configs import MachineConfig
from repro.experiments.runner import WorkloadResult, run_workload
from repro.metrics import geomean

__all__ = ["compare_schemes", "format_table", "Progress", "resolve_instructions"]

Progress = Optional[Callable[[str], None]]


def resolve_instructions(instructions, cores: int) -> Optional[int]:
    """Resolve an instruction budget that may be per-core-count.

    ``instructions`` may be ``None`` (use the machine default), an int
    (same budget at every core count), or a dict keyed by core count.
    """
    if isinstance(instructions, dict):
        return instructions.get(cores)
    return instructions


def compare_schemes(
    mixes: Sequence[str],
    config: MachineConfig,
    schemes: Sequence[str],
    instructions: Optional[int] = None,
    seed: int = 0,
    scheme_kwargs: Optional[Dict[str, dict]] = None,
    progress: Progress = None,
    jobs: Optional[int] = None,
    telemetry: bool = False,
) -> Dict[str, Dict[str, WorkloadResult]]:
    """Run every mix under every scheme.

    Args:
        jobs: worker processes; ``None`` consults ``REPRO_JOBS`` (see
            :mod:`repro.experiments.parallel`). Above 1, the grid runs on
            a process pool with results bit-identical to the serial loop.
        telemetry: record per-interval telemetry into every result
            (parallel runs return identical traces to serial ones).

    Returns:
        ``results[mix][scheme] -> WorkloadResult``.
    """
    import os

    from repro.experiments.parallel import (
        STORE_ENV,
        parallel_compare_schemes,
        resolve_jobs,
    )

    # A configured result store routes even serial grids through
    # run_specs, which owns the skip-completed/persist cache layer.
    if resolve_jobs(jobs) > 1 or os.environ.get(STORE_ENV):
        return parallel_compare_schemes(
            mixes,
            config,
            schemes,
            instructions=instructions,
            seed=seed,
            scheme_kwargs=scheme_kwargs,
            progress=progress,
            jobs=jobs,
            telemetry=telemetry,
        )
    scheme_kwargs = scheme_kwargs or {}
    results: Dict[str, Dict[str, WorkloadResult]] = {}
    for mix in mixes:
        results[mix] = {}
        for scheme in schemes:
            if progress:
                progress(f"{mix} / {scheme}")
            results[mix][scheme] = run_workload(
                mix,
                config,
                scheme,
                seed=seed,
                instructions=instructions,
                scheme_kwargs=scheme_kwargs.get(scheme),
                telemetry=telemetry,
            )
    return results


def geomean_ratio(
    results: Dict[str, Dict[str, WorkloadResult]],
    scheme: str,
    baseline: str,
    metric: str = "antt",
) -> float:
    """Geomean over mixes of ``metric(scheme) / metric(baseline)``."""
    ratios = [
        getattr(per_mix[scheme], metric) / getattr(per_mix[baseline], metric)
        for per_mix in results.values()
    ]
    return geomean(ratios)


def format_table(headers: Sequence[str], rows: Sequence[Sequence], width: int = 12) -> str:
    """Fixed-width text table (what the bench harness prints)."""

    def fmt(cell) -> str:
        if isinstance(cell, float):
            return f"{cell:.4f}"
        return str(cell)

    lines = ["  ".join(f"{h:>{width}}" for h in headers)]
    lines.append("  ".join("-" * width for _ in headers))
    for row in rows:
        lines.append("  ".join(f"{fmt(c):>{width}}" for c in row))
    return "\n".join(lines)
