"""Multiprogram performance metrics (Eyerman & Eeckhout [3])."""

from repro.metrics.multiprogram import (
    antt,
    fairness,
    geomean,
    harmonic_speedup,
    ipc_throughput,
    slowdowns,
    weighted_speedup,
)

__all__ = [
    "antt",
    "fairness",
    "geomean",
    "harmonic_speedup",
    "ipc_throughput",
    "slowdowns",
    "weighted_speedup",
]
