"""Multiprogram performance metrics (Eyerman & Eeckhout [3]) and
per-tenant SLO metrics for the multi-tenant scenario
(:mod:`repro.metrics.tenancy`)."""

from repro.metrics.multiprogram import (
    antt,
    fairness,
    geomean,
    harmonic_speedup,
    ipc_throughput,
    slowdowns,
    weighted_speedup,
)
from repro.metrics.tenancy import (
    DEFAULT_SLO_FRACTION,
    MissRunTracker,
    TenantSLOReport,
    jain_fairness,
    slo_attainment,
    tenant_hit_rates,
)

__all__ = [
    "antt",
    "fairness",
    "geomean",
    "harmonic_speedup",
    "ipc_throughput",
    "slowdowns",
    "weighted_speedup",
    "DEFAULT_SLO_FRACTION",
    "MissRunTracker",
    "TenantSLOReport",
    "jain_fairness",
    "slo_attainment",
    "tenant_hit_rates",
]
