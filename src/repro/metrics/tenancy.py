"""Per-tenant SLO metrics for the multi-tenant cache scenario.

A tenant's service quality in a shared key-value cache is not one number:
the operator watches the *hit rate* (throughput), the *p99 miss-run
length* (tail latency — a long unbroken run of misses is a stalled
tenant), the *SLO-attainment fraction* (how often the tenant met its
target, interval by interval), and *fairness* across tenants. This module
computes all four from data the engines already produce: per-access hit
arrays (chunked, via :class:`MissRunTracker`) and the per-interval
samples a :class:`~repro.telemetry.TelemetryRecorder` records.

SLO targets are tenant-relative, mirroring PriSM-Q's
``target_ipc_fraction``: tenant ``i``'s target hit rate is
``slo_fraction * solo_hit_rate[i]`` — what the tenant achieved alone on
the full cache, discounted. An absolute target would penalise scan
tenants that could never hit it even unshared.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

__all__ = [
    "DEFAULT_SLO_FRACTION",
    "MissRunTracker",
    "TenantSLOReport",
    "jain_fairness",
    "slo_attainment",
    "tenant_hit_rates",
]

#: Default tenant-relative SLO: meet 80% of your solo hit rate.
DEFAULT_SLO_FRACTION = 0.8


def tenant_hit_rates(hits: Sequence[int], misses: Sequence[int]) -> List[float]:
    """Per-tenant hit rate (0.0 for tenants that made no requests)."""
    rates = []
    for h, m in zip(hits, misses):
        total = h + m
        rates.append(h / total if total else 0.0)
    return rates


def jain_fairness(values: Sequence[float]) -> float:
    """Jain's fairness index over ``values``: 1 = equal, 1/n = one-takes-all."""
    values = list(values)
    if not values:
        return 1.0
    square_of_sum = sum(values) ** 2
    sum_of_squares = sum(v * v for v in values)
    if sum_of_squares == 0.0:
        return 1.0
    return square_of_sum / (len(values) * sum_of_squares)


class MissRunTracker:
    """Streaming per-tenant miss-run-length distribution.

    Consumes ``(cores, hit)`` arrays chunk by chunk (any chunking — runs
    spanning chunk boundaries carry over), and answers p99 queries over
    every completed run plus the currently open one. Memory is bounded by
    the number of *distinct* run lengths, not the number of runs.
    """

    def __init__(self, num_tenants: int) -> None:
        self.num_tenants = num_tenants
        self._counts: List[Dict[int, int]] = [{} for _ in range(num_tenants)]
        self._open: List[int] = [0] * num_tenants

    def update(self, cores: np.ndarray, hit: np.ndarray) -> None:
        """Fold in one chunk of per-access outcomes (in access order)."""
        cores = np.asarray(cores)
        miss = ~np.asarray(hit, dtype=bool)
        for tenant in range(self.num_tenants):
            lane = miss[cores == tenant]
            if lane.size == 0:
                continue
            padded = np.concatenate(([0], lane.astype(np.int8), [0]))
            edges = np.diff(padded)
            starts = np.flatnonzero(edges == 1)
            ends = np.flatnonzero(edges == -1)
            lengths = (ends - starts).tolist()
            carry = self._open[tenant]
            if carry:
                if lane[0]:
                    # The open run continues into this chunk's first run.
                    lengths[0] += carry
                else:
                    self._record(tenant, carry)
                self._open[tenant] = 0
            if lengths and lane[-1]:
                # Last run reaches the chunk edge: keep it open.
                self._open[tenant] = lengths.pop()
            for length in lengths:
                self._record(tenant, length)

    def _record(self, tenant: int, length: int) -> None:
        counts = self._counts[tenant]
        counts[length] = counts.get(length, 0) + 1

    def percentile(self, tenant: int, q: float = 0.99) -> int:
        """Smallest run length covering fraction ``q`` of this tenant's runs."""
        counts = dict(self._counts[tenant])
        if self._open[tenant]:
            counts[self._open[tenant]] = counts.get(self._open[tenant], 0) + 1
        total = sum(counts.values())
        if total == 0:
            return 0
        threshold = q * total
        cumulative = 0
        for length in sorted(counts):
            cumulative += counts[length]
            if cumulative >= threshold:
                return length
        return max(counts)

    def p99_all(self) -> List[int]:
        return [self.percentile(t, 0.99) for t in range(self.num_tenants)]


def slo_attainment(
    samples: Sequence, num_tenants: int, targets: Sequence[float]
) -> List[float]:
    """Fraction of telemetry intervals each tenant met its hit-rate target.

    Only intervals where the tenant actually made requests count (an idle
    interval neither meets nor misses an SLO). Tenants with no active
    intervals report 1.0 — no demand, no violation.

    Args:
        samples: :class:`~repro.telemetry.IntervalSample` records.
        num_tenants: tenant/core count.
        targets: per-tenant target hit rates.
    """
    met = [0] * num_tenants
    active = [0] * num_tenants
    for sample in samples:
        requests = sample.hits + sample.misses
        if requests <= 0:
            continue
        tenant = sample.core
        active[tenant] += 1
        if sample.hits / requests >= targets[tenant]:
            met[tenant] += 1
    return [
        met[t] / active[t] if active[t] else 1.0 for t in range(num_tenants)
    ]


@dataclass
class TenantSLOReport:
    """The per-tenant SLO scorecard of one shared run.

    ``fairness`` is Jain's index over *normalised service* (shared hit
    rate over solo hit rate), so a scheme that starves a scan tenant the
    same amount as a hot tenant still scores as fair.
    """

    tenants: List[str]
    slo_fraction: float
    solo_hit_rates: List[float]
    hit_rates: List[float]
    slo_targets: List[float]
    slo_attainment: List[float]
    p99_miss_run: List[int]
    fairness: float = 1.0
    requests: List[int] = field(default_factory=list)

    @classmethod
    def build(
        cls,
        tenants: Sequence[str],
        hits: Sequence[int],
        misses: Sequence[int],
        solo_hit_rates: Sequence[float],
        samples: Sequence,
        miss_runs: MissRunTracker,
        slo_fraction: float = DEFAULT_SLO_FRACTION,
    ) -> "TenantSLOReport":
        rates = tenant_hit_rates(hits, misses)
        targets = [slo_fraction * solo for solo in solo_hit_rates]
        service = [
            rate / solo if solo > 0 else 1.0
            for rate, solo in zip(rates, solo_hit_rates)
        ]
        return cls(
            tenants=list(tenants),
            slo_fraction=slo_fraction,
            solo_hit_rates=list(solo_hit_rates),
            hit_rates=rates,
            slo_targets=targets,
            slo_attainment=slo_attainment(samples, len(tenants), targets),
            p99_miss_run=miss_runs.p99_all(),
            fairness=jain_fairness(service),
            requests=[h + m for h, m in zip(hits, misses)],
        )

    def to_dict(self) -> dict:
        return {
            "tenants": list(self.tenants),
            "slo_fraction": self.slo_fraction,
            "solo_hit_rates": list(self.solo_hit_rates),
            "hit_rates": list(self.hit_rates),
            "slo_targets": list(self.slo_targets),
            "slo_attainment": list(self.slo_attainment),
            "p99_miss_run": list(self.p99_miss_run),
            "fairness": self.fairness,
            "requests": list(self.requests),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TenantSLOReport":
        return cls(
            tenants=list(data["tenants"]),
            slo_fraction=data["slo_fraction"],
            solo_hit_rates=list(data["solo_hit_rates"]),
            hit_rates=list(data["hit_rates"]),
            slo_targets=list(data["slo_targets"]),
            slo_attainment=list(data["slo_attainment"]),
            p99_miss_run=list(data["p99_miss_run"]),
            fairness=data["fairness"],
            requests=list(data.get("requests", [])),
        )
