"""System-level metrics for multiprogrammed workloads.

Definitions follow Eyerman & Eeckhout [3] and Section 4 of the paper:

- **ANTT** (lower is better): ``sum(IPC_i^SP / IPC_i^MP) / n`` — the average
  normalised turnaround time the paper reports for hit-maximisation.
- **Fairness** (higher is better, in [0, 1]):
  ``min_{i,j} (IPC_i^MP/IPC_i^SP) / (IPC_j^MP/IPC_j^SP)`` — the relative gap
  between the smallest and largest slowdown.
- **IPC throughput**: ``sum(IPC_i^MP)`` — used by the Fig. 1(b) motivation.
- **Weighted speedup** and **harmonic speedup** are included for
  completeness; several of the cited baselines report them.
"""

from __future__ import annotations

import math
from typing import List, Sequence

__all__ = [
    "antt",
    "fairness",
    "geomean",
    "harmonic_speedup",
    "ipc_throughput",
    "slowdowns",
    "weighted_speedup",
]


def _check_pair(sp: Sequence[float], mp: Sequence[float]) -> None:
    if len(sp) != len(mp):
        raise ValueError(f"IPC vectors disagree: {len(sp)} stand-alone vs {len(mp)} shared")
    if not sp:
        raise ValueError("empty IPC vectors")
    if any(x <= 0 for x in sp) or any(x <= 0 for x in mp):
        raise ValueError("IPCs must be strictly positive")


def slowdowns(standalone_ipc: Sequence[float], shared_ipc: Sequence[float]) -> List[float]:
    """Per-program normalised progress ``IPC^MP / IPC^SP`` (1 = no slowdown)."""
    _check_pair(standalone_ipc, shared_ipc)
    return [mp / sp for sp, mp in zip(standalone_ipc, shared_ipc)]


def antt(standalone_ipc: Sequence[float], shared_ipc: Sequence[float]) -> float:
    """Average normalised turnaround time (lower is better)."""
    _check_pair(standalone_ipc, shared_ipc)
    n = len(standalone_ipc)
    return sum(sp / mp for sp, mp in zip(standalone_ipc, shared_ipc)) / n


def fairness(standalone_ipc: Sequence[float], shared_ipc: Sequence[float]) -> float:
    """Min-over-max relative slowdown (higher is better, in (0, 1])."""
    progress = slowdowns(standalone_ipc, shared_ipc)
    return min(progress) / max(progress)


def ipc_throughput(shared_ipc: Sequence[float]) -> float:
    """Sum of IPCs (the system-throughput view of Fig. 1(b))."""
    if not shared_ipc:
        raise ValueError("empty IPC vector")
    return float(sum(shared_ipc))


def weighted_speedup(standalone_ipc: Sequence[float], shared_ipc: Sequence[float]) -> float:
    """``sum(IPC_i^MP / IPC_i^SP)``."""
    return float(sum(slowdowns(standalone_ipc, shared_ipc)))


def harmonic_speedup(standalone_ipc: Sequence[float], shared_ipc: Sequence[float]) -> float:
    """``n / sum(IPC_i^SP / IPC_i^MP)`` — balances throughput and fairness."""
    _check_pair(standalone_ipc, shared_ipc)
    n = len(standalone_ipc)
    return n / sum(sp / mp for sp, mp in zip(standalone_ipc, shared_ipc))


def geomean(values: Sequence[float]) -> float:
    """Geometric mean (the paper's cross-workload average)."""
    if not values:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires strictly positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))
