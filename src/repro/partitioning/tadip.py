"""TA-DIP — Thread-Aware Dynamic Insertion Policy, Jaleel et al. [7].

TA-DIP generalises DIP to shared caches: every core has its *own* policy
selector (PSEL) choosing between LRU- and BIP-insertion for that core's
fills, trained by per-core leader sets (the set-dueling-monitor layout of
the TA-DIP paper). Like PIPP, TA-DIP fuses the allocation decision into
the replacement policy itself, which is why the paper classes it among the
monolithic schemes that cannot express fairness or QoS goals.

Implemented as a :class:`~repro.cache.replacement.base.ReplacementPolicy`
(not a scheme): TA-DIP has no victim-selection or interval component, only
insertion behaviour.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.cache.cacheset import CacheSet
from repro.cache.replacement.base import ReplacementPolicy
from repro.util.rng import make_rng

__all__ = ["TADIPPolicy"]


class TADIPPolicy(ReplacementPolicy):
    """Thread-aware DIP with per-core set dueling (TA-DIP-F "feedback").

    Args:
        num_cores: number of cores sharing the cache.
        epsilon: BIP bimodal probability.
        leader_sets: leader sets per (core, policy) pair.
        psel_bits: PSEL width.
        seed: RNG seed for bimodal draws.
    """

    name = "tadip"
    recency_ordered = True

    on_hit = staticmethod(CacheSet.hit_promote)

    def __init__(
        self,
        num_cores: int,
        epsilon: float = 1.0 / 32.0,
        leader_sets: int = 2,
        psel_bits: int = 10,
        seed: int = 0,
    ) -> None:
        if num_cores < 1:
            raise ValueError(f"num_cores must be >= 1, got {num_cores}")
        self.num_cores = num_cores
        self.epsilon = epsilon
        self.leader_sets = leader_sets
        self.psel_max = (1 << psel_bits) - 1
        self.psel: List[int] = [self.psel_max // 2] * num_cores
        self._rng = make_rng(seed, "tadip")
        # set index -> (core, "lru" | "bip")
        self._role: Dict[int, Tuple[int, str]] = {}

    def bind(self, cache) -> None:
        super().bind(cache)
        num_sets = cache.geometry.num_sets
        slots = 2 * self.leader_sets * self.num_cores
        stride = max(1, num_sets // slots)
        self._role = {}
        slot = 0
        for core in range(self.num_cores):
            for _ in range(self.leader_sets):
                self._role[(slot * stride) % num_sets] = (core, "lru")
                slot += 1
                self._role[(slot * stride) % num_sets] = (core, "bip")
                slot += 1

    def _uses_bip(self, set_index: int, core: int) -> bool:
        role = self._role.get(set_index)
        if role is not None and role[0] == core:
            return role[1] == "bip"
        return self.psel[core] > self.psel_max // 2

    def record_miss(self, cset, core: int) -> None:
        role = self._role.get(cset.index)
        if role is None or role[0] != core:
            return
        owner, kind = role
        if kind == "lru" and self.psel[owner] < self.psel_max:
            self.psel[owner] += 1
        elif kind == "bip" and self.psel[owner] > 0:
            self.psel[owner] -= 1

    def insertion_position(self, cset, core: int) -> int:
        if self._uses_bip(cset.index, core):
            if self._rng.random() < self.epsilon:
                return 0
            return cset.assoc
        return 0

    def insert_fill(self, cset, tag: int, core: int):
        if self._uses_bip(cset.index, core) and self._rng.random() >= self.epsilon:
            return cset.fill_lru(tag, core)
        return cset.fill_mru(tag, core)

    def replace_fill(self, cset, victim, tag: int, core: int):
        if self._uses_bip(cset.index, core) and self._rng.random() >= self.epsilon:
            return cset.replace_lru(victim, tag, core)
        return cset.replace_mru(victim, tag, core)

    def victim(self, cset):
        return cset.lru_block()

    def eviction_candidates(self, cset):
        return cset.iter_lru_to_mru()

    def eviction_order(self, cset) -> List:
        return list(cset.iter_lru_to_mru())
