"""Fair cache sharing via way-partitioning, Kim, Chandra & Solihin [9].

The fairness criterion of [9] is that every program's *miss increase* from
stand-alone to shared execution should be equal (their ``M1``/``M3``
metrics correlate with the execution-time slowdown the end metric cares
about). The dynamic repartitioning algorithm runs every interval:

1. estimate each core's miss ratio increase
   ``X_i = shared_misses_i / standalone_misses_i`` with shadow tags,
2. move one way from the core with the smallest ``X`` (slowed down least)
   to the core with the largest ``X`` (slowed down most), provided the gap
   exceeds a rollback threshold.

This is the "Fairness [9]" bar of Figures 1(a), 2 and 9.
"""

from __future__ import annotations

from repro.cache.shadow import ShadowTagMonitor
from repro.partitioning.waypart import WayPartitionScheme

__all__ = ["FairWayPartitionScheme"]


class FairWayPartitionScheme(WayPartitionScheme):
    """Dynamic fair repartitioning over way quotas.

    Args:
        threshold: minimum relative gap between the extreme miss-increase
            ratios before a way moves (guards against thrashing).
        interval_len: misses between repartitions; ``None`` uses the number
            of cache blocks.
        sample_shift: shadow-tag set sampling.
    """

    name = "fair-waypart"

    def __init__(
        self, threshold: float = 0.05, interval_len: int = None, sample_shift: int = 3
    ) -> None:
        super().__init__()
        self.threshold = threshold
        self._interval_override = interval_len
        self._sample_shift = sample_shift
        self.shadow: ShadowTagMonitor = None
        self.repartitions = 0

    def on_attach(self) -> None:
        super().on_attach()
        geometry = self.cache.geometry
        self.interval_len = self._interval_override or geometry.num_blocks
        self.shadow = ShadowTagMonitor(
            self.cache.num_cores,
            geometry.num_sets,
            geometry.assoc,
            sample_shift=self._sample_shift,
        )
        self.cache.add_monitor(self.shadow)

    def _miss_increase(self, core: int) -> float:
        """``X_i``: shared misses over stand-alone misses on sampled sets."""
        alone = self.shadow.standalone_misses(core)
        shared = self.shadow.shared_misses[core]
        if alone == 0:
            # No stand-alone misses: any shared miss is pure interference.
            return float(shared + 1)
        return shared / alone

    def end_interval(self, cache) -> None:
        ratios = [self._miss_increase(core) for core in range(cache.num_cores)]
        loser = max(range(cache.num_cores), key=lambda c: ratios[c])
        donors = [c for c in range(cache.num_cores) if self.quotas[c] > 1 and c != loser]
        if not donors:
            return
        donor = min(donors, key=lambda c: ratios[c])
        if ratios[loser] - ratios[donor] <= self.threshold * max(ratios[loser], 1e-12):
            return
        quotas = list(self.quotas)
        quotas[donor] -= 1
        quotas[loser] += 1
        self.set_quotas(quotas)
        self.repartitions += 1
