"""Set partitioning / page colouring (related work [10, 19]).

Instead of dividing ways, each core is confined to a contiguous range of
cache *sets* — the hardware-free OS technique: restrict a program's page
colours and its lines can only index its own sets. The paper's related
work notes the drawback this class shares: repartitioning means re-mapping
pages, so reconfiguration is far more expensive than way quotas or PriSM's
probability update. We model the steady state with a static partition.

Because set selection happens before any scheme hook runs,
:class:`SetPartitionedCache` specialises the cache itself: the set index
is computed inside the core's own range. Within a range the baseline
replacement policy operates untouched — each core effectively owns a
private smaller cache.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.cache.cache import AccessResult, SharedCache
from repro.cache.geometry import CacheGeometry
from repro.cache.replacement.base import ReplacementPolicy

__all__ = ["SetPartitionedCache", "proportional_set_split"]


def proportional_set_split(fractions: Sequence[float], num_sets: int) -> List[int]:
    """Split ``num_sets`` into per-core contiguous counts (>= 1 each).

    Largest-remainder rounding, mirroring
    :func:`repro.partitioning.waypart.round_to_way_quotas`.
    """
    num_cores = len(fractions)
    if num_cores > num_sets:
        raise ValueError(f"cannot give {num_cores} cores >= 1 of {num_sets} sets")
    ideal = [max(0.0, f) * num_sets for f in fractions]
    counts = [max(1, int(x)) for x in ideal]
    total = sum(counts)
    while total > num_sets:
        donor = max(
            (c for c in range(num_cores) if counts[c] > 1),
            key=lambda c: counts[c] - ideal[c],
        )
        counts[donor] -= 1
        total -= 1
    remainders = sorted(
        range(num_cores), key=lambda c: ideal[c] - int(ideal[c]), reverse=True
    )
    i = 0
    while total < num_sets:
        counts[remainders[i % num_cores]] += 1
        total += 1
        i += 1
    return counts


class SetPartitionedCache(SharedCache):
    """A shared cache statically partitioned by set ranges.

    Args:
        geometry: cache geometry.
        num_cores: sharing cores.
        policy: baseline replacement policy (applies within each range).
        fractions: per-core target shares; ``None`` splits sets equally.
    """

    def __init__(
        self,
        geometry: CacheGeometry,
        num_cores: int,
        policy: Optional[ReplacementPolicy] = None,
        fractions: Optional[Sequence[float]] = None,
    ) -> None:
        super().__init__(geometry, num_cores, policy=policy)
        if fractions is None:
            fractions = [1.0 / num_cores] * num_cores
        if len(fractions) != num_cores:
            raise ValueError(
                f"expected {num_cores} fractions, got {len(fractions)}"
            )
        counts = proportional_set_split(fractions, geometry.num_sets)
        self.set_counts = counts
        self._range_base: List[int] = []
        base = 0
        for count in counts:
            self._range_base.append(base)
            base += count

    def access(self, core: int, block_addr: int) -> AccessResult:
        """Index within the core's own set range, then behave normally."""
        count = self.set_counts[core]
        local_index = block_addr % count
        remapped_set = self._range_base[core] + local_index
        # Re-encode an address whose set bits select the remapped set and
        # whose tag keeps the full original address (so distinct blocks
        # that collapse onto one local set stay distinguishable).
        remapped = (block_addr << self._tag_shift) | remapped_set
        return super().access(core, remapped)
