"""Utility-based Cache Partitioning (UCP), Qureshi & Patt, MICRO 2006 [14].

UCP pairs way-partitioning enforcement with the *lookahead* allocation
algorithm: per-core UMON circuits (sampled shadow tags with per-recency-
position hit counters, :class:`repro.cache.shadow.ShadowTagMonitor`) give
each core's utility curve ``hits(ways)``, and every interval lookahead
greedily hands out ways to the core with the highest marginal utility per
way until the cache is exhausted.

The same lookahead routine, run at block rather than way granularity, is
the "extended UCP" allocation the Vantage comparison uses
(:mod:`repro.core.allocation.ucp_extended`).
"""

from __future__ import annotations

from typing import Callable, List, Sequence

from repro.cache.shadow import ShadowTagMonitor
from repro.partitioning.waypart import WayPartitionScheme

__all__ = ["lookahead_allocate", "UCPScheme"]


def lookahead_allocate(
    utility: Callable[[int, int], float],
    num_cores: int,
    budget: int,
    minimum: int = 1,
) -> List[int]:
    """UCP's lookahead algorithm over arbitrary allocation units.

    Args:
        utility: ``utility(core, units)`` — hits core would get with
            ``units`` allocation units. Must be defined for
            ``0 <= units <= budget`` and non-decreasing in ``units``.
        num_cores: number of competing cores.
        budget: total units to distribute (associativity for way quotas).
        minimum: units every core is guaranteed (1 way under UCP).

    Returns:
        Per-core allocations summing exactly to ``budget``.

    The greedy step follows the paper: for each core compute the maximum
    marginal utility per unit over feasible increments, give the winning
    core its best increment, repeat. Ties go to the lowest core id,
    matching a fixed-priority hardware arbiter. For budgets above 32 units
    the increment search is restricted to powers of two plus the full
    balance — this finds utility cliffs to within a factor of two of their
    position at a fraction of the cost (the exact search is O(budget^2)
    per round, prohibitive in software at 64 ways x sub-way granularity).
    """
    if budget < num_cores * minimum:
        raise ValueError(
            f"budget {budget} cannot give {num_cores} cores >= {minimum} units"
        )
    alloc = [minimum] * num_cores
    balance = budget - num_cores * minimum
    while balance > 0:
        if balance <= 32:
            steps = range(1, balance + 1)
        else:
            steps = sorted(
                {1 << k for k in range(balance.bit_length() - 1)} | {balance}
            )
        best_core = -1
        best_rate = -1.0
        best_step = 1
        for core in range(num_cores):
            base = utility(core, alloc[core])
            for step in steps:
                gain = utility(core, alloc[core] + step) - base
                rate = gain / step
                if rate > best_rate:
                    best_rate = rate
                    best_core = core
                    best_step = step
        alloc[best_core] += best_step
        balance -= best_step
    return alloc


class UCPScheme(WayPartitionScheme):
    """UCP: way-partitioning driven by UMON + lookahead.

    Args:
        interval_len: misses between repartitions; ``None`` uses the
            number of cache blocks (the repo-wide default interval rule).
        sample_shift: UMON set-sampling (1/2**shift of sets).
    """

    name = "ucp"

    def __init__(self, interval_len: int = None, sample_shift: int = 3) -> None:
        super().__init__()
        self._interval_override = interval_len
        self._sample_shift = sample_shift
        self.umon: ShadowTagMonitor = None
        self.repartitions = 0

    def on_attach(self) -> None:
        super().on_attach()
        geometry = self.cache.geometry
        self.interval_len = self._interval_override or geometry.num_blocks
        self.umon = ShadowTagMonitor(
            self.cache.num_cores,
            geometry.num_sets,
            geometry.assoc,
            sample_shift=self._sample_shift,
        )
        self.cache.add_monitor(self.umon)

    def end_interval(self, cache) -> None:
        assoc = cache.geometry.assoc
        prefix = [
            [self.umon.hits_with_ways(core, w) for w in range(assoc + 1)]
            for core in range(cache.num_cores)
        ]
        quotas = lookahead_allocate(
            lambda core, units: prefix[core][min(units, assoc)],
            cache.num_cores,
            assoc,
        )
        self.set_quotas(quotas)
        self.repartitions += 1
