"""The unmanaged shared cache — the paper's LRU (and DIP) baselines."""

from __future__ import annotations

from repro.partitioning.base import ManagementScheme

__all__ = ["UnmanagedScheme"]


class UnmanagedScheme(ManagementScheme):
    """No partitioning: the baseline replacement policy decides everything.

    Attaching this scheme is equivalent to attaching no scheme at all; it
    exists so experiment configurations can treat "LRU" uniformly with the
    managed schemes.
    """

    name = "unmanaged"
    interval_len = 0
