"""Shared-cache management schemes: the paper's comparison points.

Every scheme plugs into :class:`repro.cache.SharedCache` through the hooks
defined by :class:`~repro.partitioning.base.ManagementScheme`:

- :class:`~repro.partitioning.unmanaged.UnmanagedScheme` — baseline cache
  (LRU / timestamp LRU / DIP decide everything),
- :class:`~repro.partitioning.waypart.WayPartitionScheme` — classic way
  quotas, the enforcement substrate for UCP and the fairness baseline,
- :class:`~repro.partitioning.ucp.UCPScheme` — utility-based cache
  partitioning [14] (UMON + lookahead),
- :class:`~repro.partitioning.pipp.PIPPScheme` — promotion/insertion
  pseudo-partitioning [20],
- :class:`~repro.partitioning.fair_waypart.FairWayPartitionScheme` — the
  way-partitioning fairness policy of Kim et al. [9],
- :class:`~repro.partitioning.vantage.VantageScheme` — set-associative
  adaptation of Vantage [17],
- :class:`~repro.partitioning.tadip.TADIPPolicy` — thread-aware DIP [7]
  (a replacement policy, since TA-DIP fuses allocation into replacement).
"""

from repro.partitioning.base import ManagementScheme
from repro.partitioning.unmanaged import UnmanagedScheme
from repro.partitioning.waypart import WayPartitionScheme
from repro.partitioning.ucp import UCPScheme, lookahead_allocate
from repro.partitioning.pipp import PIPPScheme
from repro.partitioning.fair_waypart import FairWayPartitionScheme
from repro.partitioning.vantage import VantageScheme
from repro.partitioning.tadip import TADIPPolicy
from repro.partitioning.setpart import SetPartitionedCache

__all__ = [
    "ManagementScheme",
    "UnmanagedScheme",
    "WayPartitionScheme",
    "UCPScheme",
    "lookahead_allocate",
    "PIPPScheme",
    "FairWayPartitionScheme",
    "VantageScheme",
    "TADIPPolicy",
    "SetPartitionedCache",
]
