"""Way-partitioning enforcement.

The classic mechanism [6, 9, 14, 15, 18]: each core holds a quota of ways,
identical in every set. On a miss the victim must come from a core that is
at-or-over its quota in the accessed set, so that in steady state every
set's per-core block counts converge to the quotas.

This module provides only the *enforcement*; allocation policies that
decide the quotas sit on top (UCP's lookahead in
:mod:`repro.partitioning.ucp`, the fairness repartitioner in
:mod:`repro.partitioning.fair_waypart`, or PriSM's hit-max allocation
rounded to ways for the Fig. 5 comparison).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.partitioning.base import ManagementScheme

__all__ = ["WayPartitionScheme", "round_to_way_quotas"]


def round_to_way_quotas(fractions: Sequence[float], assoc: int) -> List[int]:
    """Round target occupancy fractions to per-core way quotas.

    Every core gets at least one way; the remainder goes to the largest
    fractional parts (largest-remainder rounding), so quotas always sum to
    ``assoc``. This is how Section 5.2 adapts PriSM's allocation policy to
    way-partitioning ("rounding off the outcome ... to the nearest integral
    number of ways").

    Raises:
        ValueError: if there are more cores than ways.
    """
    num_cores = len(fractions)
    if num_cores > assoc:
        raise ValueError(f"cannot give {num_cores} cores >=1 of {assoc} ways")
    ideal = [max(0.0, f) * assoc for f in fractions]
    quotas = [max(1, int(x)) for x in ideal]
    total = sum(quotas)
    if total > assoc:
        # Shave the cores furthest above their ideal share until feasible.
        while total > assoc:
            donor = max(
                (c for c in range(num_cores) if quotas[c] > 1),
                key=lambda c: quotas[c] - ideal[c],
            )
            quotas[donor] -= 1
            total -= 1
    else:
        remainders = sorted(
            range(num_cores), key=lambda c: ideal[c] - int(ideal[c]), reverse=True
        )
        i = 0
        while total < assoc:
            quotas[remainders[i % num_cores]] += 1
            total += 1
            i += 1
    return quotas


class WayPartitionScheme(ManagementScheme):
    """Enforce per-core way quotas using the baseline policy's ordering.

    Args:
        quotas: initial per-core way counts; must sum to the associativity.
            ``None`` starts from an equal split.
    """

    name = "waypart"

    def __init__(self, quotas: Sequence[int] = None) -> None:
        super().__init__()
        self._initial_quotas = list(quotas) if quotas is not None else None
        self.quotas: List[int] = []

    def on_attach(self) -> None:
        assoc = self.cache.geometry.assoc
        num_cores = self.cache.num_cores
        if self._initial_quotas is not None:
            self.set_quotas(self._initial_quotas)
        else:
            base, extra = divmod(assoc, num_cores)
            if base == 0:
                raise ValueError(
                    f"{num_cores} cores cannot each get a way of a {assoc}-way cache"
                )
            self.set_quotas([base + (1 if c < extra else 0) for c in range(num_cores)])

    def set_quotas(self, quotas: Sequence[int]) -> None:
        """Install new way quotas (validated against the geometry)."""
        quotas = list(quotas)
        assoc = self.cache.geometry.assoc
        if len(quotas) != self.cache.num_cores:
            raise ValueError(
                f"expected {self.cache.num_cores} quotas, got {len(quotas)}"
            )
        if any(q < 1 for q in quotas):
            raise ValueError(f"every core needs >= 1 way, got {quotas}")
        if sum(quotas) != assoc:
            raise ValueError(f"quotas {quotas} must sum to assoc {assoc}")
        self.quotas = quotas

    def select_victim(self, cset, core: int):
        """Evict from an over-quota core; fall back to self, then to anyone.

        ``core`` (the requester) counts as over-quota when it already holds
        at least its quota in this set — its own LRU-most block goes.
        """
        count_core = cset.count_core
        counts = [count_core(c) for c in range(self.cache.num_cores)]
        if counts[core] >= self.quotas[core]:
            victim = self.first_victim_of(cset, (core,))
            if victim is not None:
                return victim
        over = [c for c in range(self.cache.num_cores) if counts[c] > self.quotas[c]]
        if over:
            victim = self.first_victim_of(cset, over)
            if victim is not None:
                return victim
        # Set full of exactly-at-quota cores other than the requester: take
        # the baseline victim among cores holding at least one block.
        return self.cache.policy.victim(cset)
