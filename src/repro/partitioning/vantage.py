"""Vantage fine-grained partitioning, Sanchez & Kozyrakis, ISCA 2011 [17],
in its set-associative adaptation.

Vantage logically splits the cache into a *managed* region, partitioned
among cores, and a small *unmanaged* region that absorbs evictions:

- fills enter the managed region of the inserting core's partition;
- on a replacement, partitions over their target size *demote* their oldest
  candidate blocks to the unmanaged region with an aperture-controlled
  probability, and the actual victim is the oldest unmanaged block;
- a hit on an unmanaged block promotes it back into its core's partition;
- per-partition apertures grow linearly with how far the partition sits
  above its target, saturating at ``max_aperture`` (0.4 in the paper).

Targets come from the *extended UCP* allocation: UCP's lookahead run at
sub-way granularity over interpolated UMON utility curves, as the Vantage
paper's evaluation does. The baseline replacement policy must be the coarse
timestamp LRU (:class:`~repro.cache.replacement.timestamp_lru.TimestampLRUPolicy`),
mirroring Section 5.3's "all the schemes use a timestamp based LRU".

When a set holds no unmanaged block, the globally oldest block is evicted
instead (a *forced* eviction, counted in :attr:`forced_evictions`). The
frequency of forced evictions is precisely the set-associative weakness of
Vantage that PriSM's whole-cache probabilistic control avoids.
"""

from __future__ import annotations

from typing import List

from repro.cache.replacement.timestamp_lru import TimestampLRUPolicy
from repro.cache.shadow import ShadowTagMonitor
from repro.partitioning.base import ManagementScheme
from repro.partitioning.ucp import lookahead_allocate
from repro.util.rng import make_rng
from repro.util.validate import check_fraction

__all__ = ["VantageScheme"]


class VantageScheme(ManagementScheme):
    """Set-associative Vantage with extended-UCP targets.

    Args:
        unmanaged_frac: fraction of the cache reserved for the unmanaged
            region (the Vantage paper uses 5-15%).
        max_aperture: demotion-probability ceiling (paper: 0.4).
        slack: relative overshoot at which the aperture saturates.
        granularity: sub-way allocation steps per way for extended UCP.
        interval_len: misses between target recomputations; ``None`` uses
            the number of cache blocks.
        sample_shift: UMON set sampling.
        seed: RNG seed for demotion draws.
    """

    name = "vantage"

    def __init__(
        self,
        unmanaged_frac: float = 0.1,
        max_aperture: float = 0.4,
        slack: float = 0.1,
        granularity: int = 4,
        interval_len: int = None,
        sample_shift: int = 3,
        seed: int = 0,
    ) -> None:
        super().__init__()
        check_fraction("unmanaged_frac", unmanaged_frac)
        check_fraction("max_aperture", max_aperture)
        if granularity < 1:
            raise ValueError(f"granularity must be >= 1, got {granularity}")
        self.unmanaged_frac = unmanaged_frac
        self.max_aperture = max_aperture
        self.slack = slack
        self.granularity = granularity
        self._interval_override = interval_len
        self._sample_shift = sample_shift
        self._rng = make_rng(seed, "vantage")
        self.umon: ShadowTagMonitor = None
        self.targets: List[float] = []  # per-core target size, in blocks
        self.managed_count: List[int] = []
        self.forced_evictions = 0
        self.demotions = 0

    def on_attach(self) -> None:
        if not isinstance(self.cache.policy, TimestampLRUPolicy):
            raise TypeError(
                "VantageScheme requires the timestamp-LRU baseline policy "
                f"(got {type(self.cache.policy).__name__})"
            )
        geometry = self.cache.geometry
        num_cores = self.cache.num_cores
        self.interval_len = self._interval_override or geometry.num_blocks
        self.umon = ShadowTagMonitor(
            num_cores, geometry.num_sets, geometry.assoc, sample_shift=self._sample_shift
        )
        self.cache.add_monitor(self.umon)
        managed_blocks = geometry.num_blocks * (1.0 - self.unmanaged_frac)
        self.targets = [managed_blocks / num_cores] * num_cores
        self.managed_count = [0] * num_cores

    # -- aperture ---------------------------------------------------------

    def aperture(self, core: int) -> float:
        """Demotion probability for ``core``'s partition right now."""
        target = self.targets[core]
        size = self.managed_count[core]
        if target <= 0.0:
            return self.max_aperture
        if size <= target:
            return 0.0
        overshoot = (size - target) / (self.slack * target)
        return min(self.max_aperture, overshoot * self.max_aperture)

    # -- per-access hooks ------------------------------------------------------

    def select_victim(self, cset, core: int):
        policy: TimestampLRUPolicy = self.cache.policy
        now = policy.now
        modulus = policy._modulus
        # Single pass over the recency list: find each partition's oldest
        # managed block (demotion candidates), the oldest unmanaged block
        # (the victim-to-be), and the oldest block overall (forced-eviction
        # fallback). Age arithmetic is inlined — this runs on every miss.
        oldest_managed = {}
        victim = None
        victim_age = -1
        oldest = None
        oldest_age = -1
        for block in cset:
            age = (now - block.timestamp) % modulus
            if age > oldest_age:
                oldest, oldest_age = block, age
            if block.managed:
                current = oldest_managed.get(block.core)
                if current is None or age > current[1]:
                    oldest_managed[block.core] = (block, age)
            elif age > victim_age:
                victim, victim_age = block, age
        # Demotion pass: each partition present in the set may demote its
        # oldest managed block with its aperture probability; a block demoted
        # here immediately competes for victimhood by age.
        for owner, (block, age) in oldest_managed.items():
            aperture = self.aperture(owner)
            if aperture > 0.0 and self._rng.random() < aperture:
                block.managed = False
                self.managed_count[owner] -= 1
                self.demotions += 1
                if age > victim_age:
                    victim, victim_age = block, age
        # Victim: oldest unmanaged block, else forced eviction of the oldest.
        if victim is None:
            self.forced_evictions += 1
            victim = oldest
            if victim.managed:
                self.managed_count[victim.core] -= 1
        return victim

    def on_hit(self, cset, block, core: int) -> None:
        if not block.managed:
            block.managed = True
            self.managed_count[block.core] += 1
        self.cache.policy.on_hit(cset, block, core)

    def on_fill(self, cset, block, core: int) -> None:
        block.managed = True
        self.managed_count[core] += 1

    # -- allocation ----------------------------------------------------------

    def end_interval(self, cache) -> None:
        assoc = cache.geometry.assoc
        budget = assoc * self.granularity
        prefix = [
            [self.umon.hits_with_ways(core, w) for w in range(assoc + 1)]
            for core in range(cache.num_cores)
        ]

        def utility(core: int, units: int) -> float:
            # UMON utility at sub-way granularity via linear interpolation.
            ways = min(units / self.granularity, float(assoc))
            lo = int(ways)
            frac = ways - lo
            base = prefix[core][lo]
            if frac == 0.0:
                return float(base)
            return base + frac * (prefix[core][min(lo + 1, assoc)] - base)

        alloc = lookahead_allocate(utility, cache.num_cores, budget, minimum=1)
        managed_blocks = cache.geometry.num_blocks * (1.0 - self.unmanaged_frac)
        self.targets = [a / budget * managed_blocks for a in alloc]
