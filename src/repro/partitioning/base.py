"""Management-scheme interface.

A scheme owns the *policy decisions* of a shared cache — who loses a block
on a miss, where fills land, how hits promote — while delegating the
baseline ordering to the cache's replacement policy. This is the decoupling
the paper argues for: allocation policies (how much space each core should
get) are separated from the enforcement mechanism (way quotas, PIPP
insertion points, Vantage apertures, or PriSM's eviction probabilities).

Schemes that reallocate periodically set ``interval_len`` (in shared-cache
misses); the cache calls :meth:`end_interval` every ``interval_len`` misses,
*before* interval statistics are reset.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.cache.block import CacheBlock
    from repro.cache.cache import SharedCache
    from repro.cache.cacheset import CacheSet

__all__ = ["ManagementScheme"]


class ManagementScheme:
    """Base scheme: defers everything to the baseline replacement policy."""

    name = "base"
    #: Misses between allocation-policy invocations; 0 disables intervals.
    interval_len = 0

    def __init__(self) -> None:
        self.cache: Optional["SharedCache"] = None

    # -- wiring -----------------------------------------------------------

    def attach(self, cache: "SharedCache") -> None:
        """Bind the scheme to ``cache`` and run scheme-specific setup."""
        self.cache = cache
        # Legacy schemes express placement as a recency index via
        # insertion_position(); route the position-free insert_fill() through
        # it so they keep working without the O(assoc) cost for everyone else.
        cls = type(self)
        base = ManagementScheme
        self._legacy_insert = (
            cls.insertion_position is not base.insertion_position
            and cls.insert_fill is base.insert_fill
        )
        # Resolve the per-access hooks once (before on_attach, which may
        # already re-wire the cache by registering monitors): a scheme that
        # does not override a hook hands the cache the *policy's* bound
        # method directly, so the hot path never pays for a delegation hop
        # through this base class.
        policy = cache.policy
        defers_insert = cls.insert_fill is base.insert_fill and not self._legacy_insert
        self._resolved_insert = policy.insert_fill if defers_insert else self.insert_fill
        self._resolved_replace = (
            policy.replace_fill
            if defers_insert and cls.replace_fill is base.replace_fill
            else self.replace_fill
        )
        self._resolved_on_hit = (
            policy.on_hit if cls.on_hit is base.on_hit else self.on_hit
        )
        self._resolved_select = (
            None if cls.select_victim is base.select_victim else self.select_victim
        )
        self.on_attach()

    def on_attach(self) -> None:
        """Scheme-specific setup; ``self.cache`` is valid here."""

    # -- per-access hooks -----------------------------------------------------

    def select_victim(self, cset: "CacheSet", core: int) -> "CacheBlock":
        """Choose the victim block for a miss by ``core`` in a full set."""
        return self.cache.policy.victim(cset)

    def insertion_position(self, cset: "CacheSet", core: int) -> int:
        """Recency position for the incoming block (legacy/inspection API)."""
        return self.cache.policy.insertion_position(cset, core)

    def insert_fill(self, cset: "CacheSet", tag: int, core: int) -> "CacheBlock":
        """Fill (``tag``, ``core``) into ``cset`` where the scheme wants it.

        Defaults to the baseline policy's placement; schemes that only
        override :meth:`insertion_position` are routed through it.
        """
        if self._legacy_insert:
            return cset.fill(tag, core, self.insertion_position(cset, core))
        return self.cache.policy.insert_fill(cset, tag, core)

    def replace_fill(
        self, cset: "CacheSet", victim: "CacheBlock", tag: int, core: int
    ) -> "CacheBlock":
        """Evict ``victim`` and place the incoming block in one step."""
        cset.evict(victim)
        return self.insert_fill(cset, tag, core)

    def on_hit(self, cset: "CacheSet", block: "CacheBlock", core: int) -> None:
        """Hit behaviour; default is the baseline policy's promotion."""
        self.cache.policy.on_hit(cset, block, core)

    def on_fill(self, cset: "CacheSet", block: "CacheBlock", core: int) -> None:
        """Post-fill hook (stamp scheme metadata on the new block)."""

    on_fill._hot_noop = True

    # -- interval hook ---------------------------------------------------------

    def end_interval(self, cache: "SharedCache") -> None:
        """Recompute allocations; interval stats are still live here."""

    # -- shared helpers ----------------------------------------------------------

    def first_victim_of(self, cset: "CacheSet", cores: Iterable[int]) -> Optional["CacheBlock"]:
        """First block in baseline eviction order owned by any of ``cores``."""
        wanted = set(cores)
        for block in self.cache.policy.eviction_candidates(cset):
            if block.core in wanted:
                return block
        return None
