"""Management-scheme interface.

A scheme owns the *policy decisions* of a shared cache — who loses a block
on a miss, where fills land, how hits promote — while delegating the
baseline ordering to the cache's replacement policy. This is the decoupling
the paper argues for: allocation policies (how much space each core should
get) are separated from the enforcement mechanism (way quotas, PIPP
insertion points, Vantage apertures, or PriSM's eviction probabilities).

Schemes that reallocate periodically set ``interval_len`` (in shared-cache
misses); the cache calls :meth:`end_interval` every ``interval_len`` misses,
*before* interval statistics are reset.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.cache.block import CacheBlock
    from repro.cache.cache import SharedCache
    from repro.cache.cacheset import CacheSet

__all__ = ["ManagementScheme"]


class ManagementScheme:
    """Base scheme: defers everything to the baseline replacement policy."""

    name = "base"
    #: Misses between allocation-policy invocations; 0 disables intervals.
    interval_len = 0

    def __init__(self) -> None:
        self.cache: Optional["SharedCache"] = None

    # -- wiring -----------------------------------------------------------

    def attach(self, cache: "SharedCache") -> None:
        """Bind the scheme to ``cache`` and run scheme-specific setup."""
        self.cache = cache
        self.on_attach()

    def on_attach(self) -> None:
        """Scheme-specific setup; ``self.cache`` is valid here."""

    # -- per-access hooks -----------------------------------------------------

    def select_victim(self, cset: "CacheSet", core: int) -> "CacheBlock":
        """Choose the victim block for a miss by ``core`` in a full set."""
        return self.cache.policy.victim(cset)

    def insertion_position(self, cset: "CacheSet", core: int) -> int:
        """Recency position for the incoming block."""
        return self.cache.policy.insertion_position(cset, core)

    def on_hit(self, cset: "CacheSet", block: "CacheBlock", core: int) -> None:
        """Hit behaviour; default is the baseline policy's promotion."""
        self.cache.policy.on_hit(cset, block, core)

    def on_fill(self, cset: "CacheSet", block: "CacheBlock", core: int) -> None:
        """Post-fill hook (stamp scheme metadata on the new block)."""

    # -- interval hook ---------------------------------------------------------

    def end_interval(self, cache: "SharedCache") -> None:
        """Recompute allocations; interval stats are still live here."""

    # -- shared helpers ----------------------------------------------------------

    def first_victim_of(self, cset: "CacheSet", cores: Iterable[int]) -> Optional["CacheBlock"]:
        """First block in baseline eviction order owned by any of ``cores``."""
        wanted = set(cores)
        for block in self.cache.policy.eviction_order(cset):
            if block.core in wanted:
                return block
        return None
