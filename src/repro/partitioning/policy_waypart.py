"""Way-partitioning driven by a PriSM allocation policy.

Section 5.2 compares the two enforcement mechanisms under the *same*
allocation policy: PriSM's hit-max targets either feed eviction
probabilities (PriSM proper) or are "rounded off ... to the nearest
integral number of ways" and enforced with way quotas. This scheme is the
latter arm of that comparison, generalised to any
:class:`~repro.core.allocation.base.AllocationPolicy`.
"""

from __future__ import annotations

from repro.cache.shadow import ShadowTagMonitor
from repro.core.allocation.base import AllocationContext, AllocationPolicy
from repro.partitioning.waypart import WayPartitionScheme, round_to_way_quotas

__all__ = ["AllocationWayPartitionScheme"]


class AllocationWayPartitionScheme(WayPartitionScheme):
    """Run an allocation policy, round its targets to way quotas.

    Args:
        policy: the allocation policy producing occupancy-fraction targets.
        interval_len: misses between repartitions; ``None`` uses the number
            of cache blocks (same rule as PriSM, keeping the comparison
            apples-to-apples).
        sample_shift: shadow-tag set sampling.
    """

    name = "waypart-alloc"

    def __init__(
        self, policy: AllocationPolicy, interval_len: int = None, sample_shift: int = 3
    ) -> None:
        super().__init__()
        self.policy_alloc = policy
        self._interval_override = interval_len
        self._sample_shift = sample_shift
        self.shadow: ShadowTagMonitor = None
        #: Performance-counter provider (set by MultiCoreSystem).
        self.perf = None

    @property
    def name_with_policy(self) -> str:
        return f"{self.name}[{self.policy_alloc.name}]"

    def on_attach(self) -> None:
        super().on_attach()
        geometry = self.cache.geometry
        self.interval_len = self._interval_override or geometry.num_blocks
        self.shadow = ShadowTagMonitor(
            self.cache.num_cores,
            geometry.num_sets,
            geometry.assoc,
            sample_shift=self._sample_shift,
        )
        self.cache.add_monitor(self.shadow)

    def end_interval(self, cache) -> None:
        ctx = AllocationContext(
            num_cores=cache.num_cores,
            occupancy=cache.occupancy_fractions(),
            miss_fractions=cache.stats.interval_miss_fractions(),
            num_blocks=cache.geometry.num_blocks,
            interval=self.interval_len,
            shadow=self.shadow,
            perf=self.perf,
        )
        targets = self.policy_alloc.compute_targets(ctx)
        self.set_quotas(round_to_way_quotas(targets, cache.geometry.assoc))
