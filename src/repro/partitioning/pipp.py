"""PIPP — Promotion/Insertion Pseudo-Partitioning, Xie & Loh, ISCA 2009 [20].

PIPP enforces an implicit partition purely through insertion and promotion:

- core ``i`` inserts new blocks at priority position ``pi_i`` (its target
  allocation in ways, computed with UCP's lookahead over UMON curves);
  higher priority = closer to MRU;
- on a hit, a block is promoted by a single position with probability
  ``p_prom`` (3/4);
- the victim is always the lowest-priority (LRU-most) block;
- *stream-sensitive* cores — those that mostly miss even with the whole
  cache to themselves — are demoted to insertion position 1 and promotion
  probability 1/128 so they cannot pollute the cache.

The paper (Section 5.1) observes PIPP's weakness at high core counts: many
cores inserting near LRU churn each other's lines out before promotion can
rescue them. That emergent behaviour is exactly what this implementation
reproduces.
"""

from __future__ import annotations

from typing import List

from repro.cache.shadow import ShadowTagMonitor
from repro.partitioning.base import ManagementScheme
from repro.partitioning.ucp import lookahead_allocate
from repro.util.rng import make_rng

__all__ = ["PIPPScheme"]


class PIPPScheme(ManagementScheme):
    """PIPP with UCP-lookahead target allocations and stream detection.

    Args:
        prom_prob: single-step promotion probability (paper: 3/4).
        stream_prom_prob: promotion probability for streaming cores (1/128).
        stream_hit_rate: stand-alone hit-rate threshold below which a core
            is classified stream-sensitive.
        interval_len: misses between target recomputations; ``None`` uses
            the number of cache blocks.
        sample_shift: UMON set sampling.
        seed: RNG seed for the promotion coin flips.
    """

    name = "pipp"

    def __init__(
        self,
        prom_prob: float = 0.75,
        stream_prom_prob: float = 1.0 / 128.0,
        stream_hit_rate: float = 0.25,
        interval_len: int = None,
        sample_shift: int = 3,
        seed: int = 0,
    ) -> None:
        super().__init__()
        self.prom_prob = prom_prob
        self.stream_prom_prob = stream_prom_prob
        self.stream_hit_rate = stream_hit_rate
        self._interval_override = interval_len
        self._sample_shift = sample_shift
        self._rng = make_rng(seed, "pipp")
        self.umon: ShadowTagMonitor = None
        self.pi: List[int] = []
        self.streaming: List[bool] = []

    def on_attach(self) -> None:
        geometry = self.cache.geometry
        num_cores = self.cache.num_cores
        self.interval_len = self._interval_override or geometry.num_blocks
        self.umon = ShadowTagMonitor(
            num_cores, geometry.num_sets, geometry.assoc, sample_shift=self._sample_shift
        )
        self.cache.add_monitor(self.umon)
        base, extra = divmod(geometry.assoc, num_cores)
        self.pi = [max(1, base + (1 if c < extra else 0)) for c in range(num_cores)]
        self.streaming = [False] * num_cores

    # -- enforcement ------------------------------------------------------

    def insertion_position(self, cset, core: int) -> int:
        """Priority pi counts from the LRU end; recency position inverts it."""
        pi = 1 if self.streaming[core] else self.pi[core]
        return max(0, cset.assoc - pi)

    def insert_fill(self, cset, tag: int, core: int):
        pi = 1 if self.streaming[core] else self.pi[core]
        return cset.fill(tag, core, max(0, cset.assoc - pi))

    def on_hit(self, cset, block, core: int) -> None:
        prob = self.stream_prom_prob if self.streaming[block.core] else self.prom_prob
        if self._rng.random() < prob:
            cset.promote_one(block)

    def select_victim(self, cset, core: int):
        return self.cache.policy.victim(cset)

    # -- allocation ----------------------------------------------------------

    def end_interval(self, cache) -> None:
        self.pi = lookahead_allocate(
            self.umon.hits_with_ways, cache.num_cores, cache.geometry.assoc
        )
        for core in range(cache.num_cores):
            hits = self.umon.standalone_hits(core)
            misses = self.umon.standalone_misses(core)
            accesses = hits + misses
            if accesses:
                self.streaming[core] = hits / accesses < self.stream_hit_rate
