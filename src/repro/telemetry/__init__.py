"""Interval telemetry: typed per-interval samples from the shared cache.

The one observability layer for everything PriSM computes per allocation
interval — occupancies ``C_i``, miss fractions ``M_i``, eviction
probabilities ``E_i`` (Eq. 1), targets ``T_i`` — plus per-core finish
events and run-level profiling. Figures 4 and 11 are built on it, and
``repro-sim run --telemetry-out trace.jsonl`` dumps it from the CLI.

Quick start::

    from repro.experiments.configs import machine
    from repro.experiments.runner import run_workload

    result = run_workload("Q7", machine(4), "prism-h", telemetry=True)
    trace = result.telemetry          # a RunTelemetry
    trace.series("occupancy", core=0) # C_0 per interval
    trace.write("trace.jsonl")

See ``docs/telemetry.md`` for the full worked example.
"""

from repro.telemetry.recorder import TelemetryRecorder
from repro.telemetry.samples import (
    TRACE_FIELDS,
    FinishSample,
    IntervalSample,
    RunTelemetry,
    RunTiming,
)
from repro.telemetry.sinks import CSVSink, JSONLSink, MemorySink, open_sink

__all__ = [
    "TelemetryRecorder",
    "IntervalSample",
    "FinishSample",
    "RunTelemetry",
    "RunTiming",
    "TRACE_FIELDS",
    "MemorySink",
    "JSONLSink",
    "CSVSink",
    "open_sink",
]
