"""The interval-boundary telemetry recorder.

:class:`TelemetryRecorder` is the hook :class:`~repro.cache.cache.SharedCache`
fires at every allocation-interval boundary — after the scheme has
reallocated (so the freshly installed ``E_i``/``T_i`` are readable) and
before the interval counters reset (so the interval views are still
live). It never touches the per-access hot path: intervals are rare
(every ``W`` misses), so recording costs nothing measurable.

Wiring is one call either way:

- ``TelemetryRecorder().bind(system)`` — full system: interval samples
  gain instructions/IPC from the timing model, and per-core finish
  events are recorded as they happen;
- ``TelemetryRecorder().bind_cache(cache)`` — bare cache (unit tests,
  custom drivers): instruction/IPC fields read as zero.

Pass ``sink=`` to stream rows as they are recorded; the in-memory
:class:`~repro.telemetry.samples.RunTelemetry` is always built and
returned by :meth:`result`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.telemetry.samples import FinishSample, IntervalSample, RunTelemetry

__all__ = ["TelemetryRecorder"]


class TelemetryRecorder:
    """Records one :class:`RunTelemetry` for one simulation run.

    Args:
        sink: optional streaming sink (``MemorySink``/``JSONLSink``/
            ``CSVSink`` or anything with ``write_row(dict)``/``close()``).
            Interval rows stream at each boundary; finish rows are
            flushed — and the sink closed — by :meth:`finalize`.
    """

    def __init__(self, sink=None) -> None:
        self._sink = sink
        self._system = None
        self._perf = None
        self._cache = None
        self._benchmarks: List[str] = []
        self._telemetry: Optional[RunTelemetry] = None

    # -- wiring ------------------------------------------------------------

    def bind(self, system) -> "TelemetryRecorder":
        """Attach to a ``MultiCoreSystem`` (cache hook + timing counters)."""
        self._system = system
        self._perf = system
        self.bind_cache(system.cache, benchmarks=[p.name for p in system.profiles])
        return self

    def bind_cache(
        self,
        cache,
        benchmarks: Optional[Sequence[str]] = None,
        perf=None,
    ) -> "TelemetryRecorder":
        """Attach to a bare ``SharedCache`` (no timing model).

        Args:
            cache: the cache whose interval boundary fires the recorder.
            benchmarks: per-core labels (default ``core0..coreN``).
            perf: optional provider of ``interval_instructions(core)`` and
                ``ipc(core)`` to populate the sample fields a full system
                would (e.g. :class:`repro.tenancy.TenantPerfProvider`);
                without one those fields read as zero.
        """
        self._cache = cache
        if perf is not None:
            self._perf = perf
        if benchmarks is None:
            benchmarks = [f"core{i}" for i in range(cache.num_cores)]
        self._benchmarks = list(benchmarks)
        self._telemetry = RunTelemetry(
            num_cores=cache.num_cores, benchmarks=list(self._benchmarks)
        )
        cache.set_telemetry(self)
        return self

    # -- recording (called by the cache / system) ---------------------------

    def record_interval(self, cache) -> None:
        """Capture one :class:`IntervalSample` per core.

        Called by ``SharedCache._end_interval`` with the scheme already
        reallocated and the interval counters not yet reset.
        """
        telemetry = self._telemetry
        interval = cache.intervals_completed  # not yet incremented: 0-based
        stats = cache.stats
        num_blocks = cache.geometry.num_blocks
        occupancy = cache.occupancy
        miss_fractions = stats.interval_miss_fractions()
        hits = stats.interval_hits
        misses = stats.interval_misses
        evictions = stats.interval_evictions
        probabilities = self._eviction_probabilities(cache)
        targets = self._targets(cache)
        perf = self._perf
        sink = self._sink
        for core in range(cache.num_cores):
            if perf is not None:
                instructions = perf.interval_instructions(core)
                ipc = perf.ipc(core)
            else:
                instructions = 0
                ipc = 0.0
            sample = IntervalSample(
                interval=interval,
                core=core,
                benchmark=self._benchmarks[core],
                occupancy=occupancy[core] / num_blocks,
                miss_fraction=miss_fractions[core],
                eviction_probability=(
                    probabilities[core] if probabilities is not None else None
                ),
                target=targets[core] if targets is not None else None,
                hits=hits[core],
                misses=misses[core],
                evictions=evictions[core],
                instructions=instructions,
                ipc=ipc,
            )
            telemetry.samples.append(sample)
            if sink is not None:
                sink.write_row(sample.to_row())

    def record_finish(
        self, core: int, instructions: int, cycles: float, occupancy: float
    ) -> None:
        """Capture a core crossing its instruction target (the Fig. 4 moment)."""
        self._telemetry.finishes.append(
            FinishSample(
                core=core,
                benchmark=self._benchmarks[core],
                instructions=instructions,
                cycles=cycles,
                occupancy=occupancy,
            )
        )

    def note_alloc_seconds(self, seconds: float) -> None:
        """Accumulate wall-clock time spent inside ``scheme.end_interval``."""
        self._telemetry.timing.alloc_seconds += seconds

    def finalize(self, wall_seconds: float, accesses: int) -> RunTelemetry:
        """Close out the run: timing totals, flush finish rows, close sink."""
        timing = self._telemetry.timing
        timing.wall_seconds += wall_seconds
        timing.accesses += accesses
        if self._sink is not None:
            for sample in self._telemetry.finishes:
                self._sink.write_row(sample.to_row())
            self._sink.close()
        return self._telemetry

    def result(self) -> RunTelemetry:
        """The telemetry recorded so far."""
        if self._telemetry is None:
            raise RuntimeError("recorder is not bound to a cache or system")
        return self._telemetry

    # -- scheme introspection -----------------------------------------------

    @staticmethod
    def _eviction_probabilities(cache) -> Optional[Sequence[float]]:
        """The freshly installed ``E`` distribution, or None for schemes
        without a probabilistic manager (UCP, Vantage, unmanaged...)."""
        manager = getattr(cache.scheme, "manager", None)
        return getattr(manager, "probabilities", None)

    @staticmethod
    def _targets(cache) -> Optional[List[float]]:
        """Per-core occupancy targets ``T_i`` as cache fractions.

        Schemes express targets either as fractions (PriSM: sums to 1) or
        block counts (Vantage); way-partitioners only have way quotas.
        All are normalised to fractions of cache capacity.
        """
        scheme = cache.scheme
        targets = getattr(scheme, "targets", None)
        if targets:
            if max(targets) > 1.0:  # block counts, not fractions
                num_blocks = cache.geometry.num_blocks
                return [t / num_blocks for t in targets]
            return list(targets)
        quotas = getattr(scheme, "quotas", None)
        if quotas:
            assoc = cache.geometry.assoc
            return [q / assoc for q in quotas]
        return None
