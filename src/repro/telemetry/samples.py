"""Typed telemetry records and the per-run container.

PriSM's contribution lives in per-interval quantities — occupancies
``C_i``, miss fractions ``M_i``, eviction probabilities ``E_i``, targets
``T_i`` (Eq. 1) — so the telemetry subsystem records exactly those, one
:class:`IntervalSample` per core per allocation interval, plus one
:class:`FinishSample` per core at its instruction-target finish line (the
moment Fig. 4 reports occupancy for).

Everything here is a plain dataclass of primitives: samples pickle
cleanly through :mod:`repro.experiments.parallel` workers, and equal
simulations produce bit-equal samples, so a ``--jobs`` trace can be
byte-identical to the serial one. The single deliberately *non*-
deterministic record, :class:`RunTiming` (wall-clock profiling), is
excluded from equality comparison and from serialized traces.
"""

from __future__ import annotations

import csv
import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

__all__ = [
    "IntervalSample",
    "FinishSample",
    "RunTiming",
    "RunTelemetry",
    "TRACE_FIELDS",
]

#: Column order for tabular (CSV) traces; the union of interval-row and
#: finish-row fields. ``record`` discriminates the row kind.
TRACE_FIELDS = (
    "record",
    "interval",
    "core",
    "benchmark",
    "occupancy",
    "miss_fraction",
    "eviction_probability",
    "target",
    "hits",
    "misses",
    "evictions",
    "instructions",
    "ipc",
    "cycles",
)


@dataclass(frozen=True)
class IntervalSample:
    """One core's view of one allocation interval, taken at the boundary.

    Captured after the scheme has reallocated but before interval counters
    reset, so ``eviction_probability``/``target`` are the values installed
    *for the next interval* (exactly what the scheme just computed from
    this interval's ``occupancy``/``miss_fraction``).
    """

    interval: int  #: 0-based interval index
    core: int
    benchmark: str
    occupancy: float  #: ``C_i``: fraction of cache blocks owned at the boundary
    miss_fraction: float  #: ``M_i``: share of this interval's misses
    eviction_probability: Optional[float]  #: ``E_i`` (None when the scheme has none)
    target: Optional[float]  #: ``T_i`` occupancy target (None when the scheme has none)
    hits: int  #: interval hits
    misses: int  #: interval misses
    evictions: int  #: interval evictions suffered
    instructions: int  #: instructions retired this interval (0 without a timing model)
    ipc: float  #: interval IPC (0.0 without a timing model)

    def to_row(self) -> Dict:
        """Flat dict for trace sinks (field order matches TRACE_FIELDS)."""
        return {
            "record": "interval",
            "interval": self.interval,
            "core": self.core,
            "benchmark": self.benchmark,
            "occupancy": self.occupancy,
            "miss_fraction": self.miss_fraction,
            "eviction_probability": self.eviction_probability,
            "target": self.target,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "instructions": self.instructions,
            "ipc": self.ipc,
        }


@dataclass(frozen=True)
class FinishSample:
    """A core's state the moment it retired its instruction target.

    This is the sampling point the paper's Fig. 4 reports: programs finish
    at different times, so these occupancies need not sum to 1.
    """

    core: int
    benchmark: str
    instructions: int
    cycles: float
    occupancy: float  #: fraction of cache blocks owned at the finish line

    def to_row(self) -> Dict:
        return {
            "record": "finish",
            "core": self.core,
            "benchmark": self.benchmark,
            "occupancy": self.occupancy,
            "instructions": self.instructions,
            "cycles": self.cycles,
        }


@dataclass
class RunTiming:
    """Run-level wall-clock profiling counters (non-deterministic).

    Excluded from trace files and from :class:`RunTelemetry` equality:
    two identical simulations produce identical samples but different
    timings, and the byte-identical ``--jobs`` guarantee must hold.
    """

    wall_seconds: float = 0.0  #: total time inside ``MultiCoreSystem.run``
    alloc_seconds: float = 0.0  #: time inside ``scheme.end_interval`` calls
    accesses: int = 0  #: shared-cache accesses issued during the run

    @property
    def access_seconds(self) -> float:
        """Time on the access path (everything outside allocation)."""
        return max(0.0, self.wall_seconds - self.alloc_seconds)

    @property
    def accesses_per_sec(self) -> float:
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.accesses / self.wall_seconds

    @property
    def alloc_share(self) -> float:
        """Fraction of run time spent in the allocation policy."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.alloc_seconds / self.wall_seconds

    def describe(self) -> str:
        return (
            f"{self.accesses} accesses in {self.wall_seconds:.2f}s "
            f"({self.accesses_per_sec:,.0f} acc/s; "
            f"{self.alloc_share:.1%} in allocation policy)"
        )


@dataclass
class RunTelemetry:
    """Everything one run's recorder captured.

    Equality compares the deterministic payload only (``samples`` and
    ``finishes``); ``timing`` is profiling and varies run to run.
    """

    num_cores: int
    benchmarks: List[str]
    samples: List[IntervalSample] = field(default_factory=list)
    finishes: List[FinishSample] = field(default_factory=list)
    timing: RunTiming = field(default_factory=RunTiming, compare=False)

    # -- views --------------------------------------------------------------

    @property
    def num_intervals(self) -> int:
        """Allocation intervals recorded (= scheme recomputations)."""
        if not self.samples:
            return 0
        return self.samples[-1].interval + 1

    def per_core(self, core: int) -> List[IntervalSample]:
        """This core's interval samples, in interval order."""
        return [s for s in self.samples if s.core == core]

    def series(self, field_name: str, core: int) -> List:
        """One field of one core's samples as a list (plotting helper)."""
        return [getattr(s, field_name) for s in self.per_core(core)]

    def occupancy_at_finish(self, core: int) -> float:
        """The Fig. 4 number: occupancy fraction when ``core`` finished."""
        for sample in self.finishes:
            if sample.core == core:
                return sample.occupancy
        return 0.0

    def probability_stats(self) -> List[Dict]:
        """Per-core mean/std of ``E_i`` across intervals (the Fig. 11 view).

        Accumulates in interval order with the same running-sum formula the
        scheme's own reporting uses, so the numbers are bit-equal to
        ``PrismScheme.probability_stats()`` for the same run.
        """
        n = self.num_intervals
        sums = [0.0] * self.num_cores
        sumsqs = [0.0] * self.num_cores
        for sample in self.samples:
            p = sample.eviction_probability
            if p is None:
                continue
            sums[sample.core] += p
            sumsqs[sample.core] += p * p
        stats = []
        for core in range(self.num_cores):
            if n == 0:
                stats.append({"mean": 0.0, "std": 0.0, "samples": 0})
                continue
            mean = sums[core] / n
            variance = max(0.0, sumsqs[core] / n - mean * mean)
            stats.append({"mean": mean, "std": math.sqrt(variance), "samples": n})
        return stats

    # -- serialization -----------------------------------------------------

    def rows(self) -> Iterator[Dict]:
        """Deterministic trace rows: interval samples, then finish samples.

        This is the canonical trace order — the same order a streaming sink
        observes (finish rows are flushed at run end), so a post-hoc write
        of a worker-returned ``RunTelemetry`` is byte-identical to a live
        serial recording.
        """
        for sample in self.samples:
            yield sample.to_row()
        for sample in self.finishes:
            yield sample.to_row()

    def write_jsonl(self, path: Union[str, Path]) -> Path:
        """Write the trace as JSON lines (one record per line)."""
        path = Path(path)
        with open(path, "w") as fh:
            for row in self.rows():
                fh.write(json.dumps(row) + "\n")
        return path

    def write_csv(self, path: Union[str, Path]) -> Path:
        """Write the trace as CSV with the :data:`TRACE_FIELDS` columns."""
        path = Path(path)
        with open(path, "w", newline="") as fh:
            writer = csv.DictWriter(fh, fieldnames=TRACE_FIELDS, restval="")
            writer.writeheader()
            for row in self.rows():
                writer.writerow(row)
        return path

    def write(self, path: Union[str, Path]) -> Path:
        """Write the trace, picking the format from the extension.

        ``.csv`` writes CSV; anything else (``.jsonl`` recommended) writes
        JSON lines.
        """
        path = Path(path)
        if path.suffix.lower() == ".csv":
            return self.write_csv(path)
        return self.write_jsonl(path)
