"""Streaming trace sinks for :class:`~repro.telemetry.TelemetryRecorder`.

A sink receives one flat row dict per record, in the canonical trace
order (interval samples as they happen, finish samples at run end). The
file sinks emit exactly the same bytes as the post-hoc
:meth:`RunTelemetry.write_jsonl` / :meth:`RunTelemetry.write_csv`
writers, so a live serial recording and a trace written from a
worker-returned :class:`RunTelemetry` are interchangeable —
byte-identical for the same simulation.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, List, Union

from repro.telemetry.samples import TRACE_FIELDS

__all__ = ["MemorySink", "JSONLSink", "CSVSink", "open_sink"]


class MemorySink:
    """Collects rows into a list (the default for in-process analysis)."""

    def __init__(self) -> None:
        self.rows: List[Dict] = []

    def write_row(self, row: Dict) -> None:
        self.rows.append(row)

    def close(self) -> None:
        pass


class JSONLSink:
    """Streams rows as JSON lines to ``path``."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._fh = open(self.path, "w")

    def write_row(self, row: Dict) -> None:
        self._fh.write(json.dumps(row) + "\n")

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()


class CSVSink:
    """Streams rows as CSV (columns: :data:`TRACE_FIELDS`) to ``path``."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._fh = open(self.path, "w", newline="")
        self._writer = csv.DictWriter(self._fh, fieldnames=TRACE_FIELDS, restval="")
        self._writer.writeheader()

    def write_row(self, row: Dict) -> None:
        self._writer.writerow(row)

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()


def open_sink(path: Union[str, Path]):
    """A file sink for ``path``, picked by extension (``.csv`` → CSV,
    anything else → JSON lines)."""
    path = Path(path)
    if path.suffix.lower() == ".csv":
        return CSVSink(path)
    return JSONLSink(path)
