"""Small argument-validation helpers used across the package.

These raise ``ValueError`` with a consistent message format so that
misconfigured experiments fail fast and loudly instead of silently
producing meaningless results.
"""

from __future__ import annotations

__all__ = ["check_fraction", "check_positive", "check_power_of_two"]


def check_fraction(name: str, value: float) -> float:
    """Require ``value`` to lie in the closed interval [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return float(value)


def check_positive(name: str, value: float) -> float:
    """Require ``value`` to be strictly positive."""
    if value <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_power_of_two(name: str, value: int) -> int:
    """Require ``value`` to be a positive power of two."""
    if value <= 0 or (value & (value - 1)) != 0:
        raise ValueError(f"{name} must be a positive power of two, got {value!r}")
    return value
