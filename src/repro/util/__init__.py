"""Shared utilities: deterministic RNG derivation and small numeric helpers."""

from repro.util.rng import derive_seed, make_rng
from repro.util.validate import check_fraction, check_positive, check_power_of_two

__all__ = [
    "derive_seed",
    "make_rng",
    "check_fraction",
    "check_positive",
    "check_power_of_two",
]
