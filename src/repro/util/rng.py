"""Deterministic random-number plumbing.

Every stochastic component in the simulator (the PriSM core-selection step,
the synthetic workload generators, DIP's bimodal insertion, ...) draws from
its own :class:`random.Random` instance seeded through :func:`derive_seed`.
This keeps runs bit-reproducible under a single top-level seed while letting
components evolve independently: adding a draw to one component never
perturbs the stream seen by another.
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["derive_seed", "make_rng"]


def derive_seed(base_seed: int, *labels: object) -> int:
    """Derive a child seed from ``base_seed`` and a label path.

    The derivation is a stable hash (SHA-256) of the base seed and the
    labels' ``repr``; it does not depend on :envvar:`PYTHONHASHSEED` or the
    process, so traces and experiments are reproducible across runs and
    machines.

    Args:
        base_seed: the experiment-level seed.
        labels: any hashable-by-repr path, e.g. ``("core", 3, "prism")``.

    Returns:
        A non-negative 63-bit integer seed.
    """
    digest = hashlib.sha256()
    digest.update(str(int(base_seed)).encode("ascii"))
    for label in labels:
        digest.update(b"/")
        digest.update(repr(label).encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big") & 0x7FFF_FFFF_FFFF_FFFF


def make_rng(base_seed: int, *labels: object) -> random.Random:
    """Return a :class:`random.Random` seeded via :func:`derive_seed`."""
    return random.Random(derive_seed(base_seed, *labels))
