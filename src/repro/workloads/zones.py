"""The zone access model.

A benchmark's LLC-visible reference stream is modelled as a weighted
mixture of *zones*:

- :class:`UniformZone` — uniform random references within a footprint of
  ``size`` blocks. Under LRU a uniform zone yields a miss rate that falls
  roughly linearly as the zone's resident fraction grows, reaching ~0 when
  the whole footprint fits: a linear utility segment with a knee at
  ``size``.
- :class:`ScanZone` — a sequential wrap-around walk over ``size`` blocks.
  Under LRU a scan hits only when the entire footprint is resident: a
  utility *cliff* (and, when ``size`` exceeds any plausible allocation, a
  pure streamer that LRU cannot help).

Mixing a few zones of different sizes produces the piecewise-linear,
knee-and-cliff utility curves that utility-based allocation (UCP's
lookahead, PriSM-H's potential gains) was designed to exploit — which is
why this substitution preserves the paper's comparisons (DESIGN.md §2).

Addresses are *block* addresses local to the benchmark; the system offsets
them per core so programs never share cache lines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.util.rng import make_rng

__all__ = ["UniformZone", "ScanZone", "ZoneModel"]


@dataclass(frozen=True)
class UniformZone:
    """Uniform random references over ``size`` blocks, chosen with ``weight``."""

    weight: float
    size: int

    def __post_init__(self) -> None:
        if self.weight < 0:
            raise ValueError(f"zone weight must be >= 0, got {self.weight}")
        if self.size < 1:
            raise ValueError(f"zone size must be >= 1, got {self.size}")


@dataclass(frozen=True)
class ScanZone:
    """Sequential wrap-around walk over ``size`` blocks, chosen with ``weight``."""

    weight: float
    size: int

    def __post_init__(self) -> None:
        if self.weight < 0:
            raise ValueError(f"zone weight must be >= 0, got {self.weight}")
        if self.size < 1:
            raise ValueError(f"zone size must be >= 1, got {self.size}")


class ZoneModel:
    """Seeded address generator over a zone mixture.

    Args:
        zones: the mixture; weights are normalised internally.
        seed: generator seed (streams are bit-reproducible per seed).
        scale: multiply every zone footprint by this factor (used to keep
            working sets proportionate when the cache is scaled).
    """

    def __init__(self, zones: Sequence, seed: int = 0, scale: float = 1.0) -> None:
        if not zones:
            raise ValueError("a zone model needs at least one zone")
        if scale <= 0:
            raise ValueError(f"scale must be > 0, got {scale}")
        total_weight = sum(z.weight for z in zones)
        if total_weight <= 0:
            raise ValueError("zone weights sum to zero")
        self.zones = list(zones)
        self._cumweights: List[float] = []
        acc = 0.0
        for zone in zones:
            acc += zone.weight / total_weight
            self._cumweights.append(acc)
        self._cumweights[-1] = 1.0
        self._sizes = [max(1, int(round(z.size * scale))) for z in zones]
        # Zones occupy disjoint address ranges, laid out back to back.
        self._bases: List[int] = []
        base = 0
        for size in self._sizes:
            self._bases.append(base)
            base += size
        self.footprint = base
        self._scan_pos = [0] * len(zones)
        self._rng = make_rng(seed, "zones")

    def next_address(self) -> int:
        """Generate the next block address."""
        r = self._rng.random()
        index = 0
        while self._cumweights[index] < r:
            index += 1
        zone = self.zones[index]
        size = self._sizes[index]
        if isinstance(zone, ScanZone):
            offset = self._scan_pos[index]
            self._scan_pos[index] = (offset + 1) % size
        else:
            offset = self._rng.randrange(size)
        return self._bases[index] + offset

    def addresses(self, count: int) -> List[int]:
        """Generate ``count`` addresses (convenience for tests/traces)."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        return [self.next_address() for _ in range(count)]

    def zone_ranges(self) -> List[Tuple[int, int]]:
        """Per-zone (base, size) address ranges, for inspection."""
        return list(zip(self._bases, self._sizes))
