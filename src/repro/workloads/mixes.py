"""Multiprogrammed workload mixes.

The paper evaluates 71 mixes — 21 quad-core (Q1-Q21), 16 eight-core
(E1-E16), 20 sixteen-core (S1-S20) and 14 thirtytwo-core (T1-T14) — whose
composition lives in an unavailable technical report [12]. We therefore:

- hand-author the 21 quad mixes to honour every composition constraint the
  paper text states (Q1 contains ``168.wupwise``; Q4 pairs ``175.vpr`` and
  ``471.omnetpp`` against ``410.bwaves``/``470.lbm``; Q5/Q6/Q8/Q14 contain
  the cache-friendly trio ``179.art``/``300.twolf``/``471.omnetpp``; Q7
  features ``179.art`` with large headroom; Q19/Q20 contain ``300.twolf``
  with little else to gain; Q3/Q9 are the mixes where UCP edges PriSM),
- generate the larger mixes deterministically (seeded) with the category
  balance multiprogrammed studies use: at least one cache-friendly, one
  streaming and one insensitive program per mix, remainder sampled from
  the whole catalog. Profiles may repeat within the big mixes; repeated
  instances run with distinct stream seeds.
"""

from __future__ import annotations

from typing import Dict, List

from repro.util.rng import make_rng
from repro.workloads.spec import PROFILES, profiles_by_category

__all__ = ["MIXES", "get_mix", "mixes_for_cores", "describe_mix"]

_QUAD: Dict[str, List[str]] = {
    "Q1": ["168.wupwise", "416.gamess", "403.gcc", "401.bzip2"],
    "Q2": ["450.soplex", "470.lbm", "444.namd", "456.hmmer"],
    "Q3": ["179.art", "470.lbm", "458.sjeng", "464.h264ref"],
    "Q4": ["175.vpr", "471.omnetpp", "410.bwaves", "470.lbm"],
    "Q5": ["179.art", "300.twolf", "429.mcf", "444.namd"],
    "Q6": ["300.twolf", "471.omnetpp", "462.libquantum", "403.gcc"],
    "Q7": ["179.art", "429.mcf", "470.lbm", "416.gamess"],
    "Q8": ["179.art", "471.omnetpp", "410.bwaves", "458.sjeng"],
    "Q9": ["471.omnetpp", "183.equake", "401.bzip2", "435.gromacs"],
    "Q10": ["473.astar", "171.swim", "456.hmmer", "416.gamess"],
    "Q11": ["179.art", "462.libquantum", "168.wupwise", "444.namd"],
    "Q12": ["471.omnetpp", "429.mcf", "171.swim", "416.gamess"],
    "Q13": ["482.sphinx3", "181.mcf", "464.h264ref", "435.gromacs"],
    "Q14": ["300.twolf", "450.soplex", "470.lbm", "458.sjeng"],
    "Q15": ["175.vpr", "188.ammp", "462.libquantum", "444.namd"],
    "Q16": ["473.astar", "183.equake", "403.gcc", "458.sjeng"],
    "Q17": ["450.soplex", "429.mcf", "410.bwaves", "456.hmmer"],
    "Q18": ["482.sphinx3", "168.wupwise", "171.swim", "435.gromacs"],
    "Q19": ["300.twolf", "181.mcf", "462.libquantum", "403.gcc"],
    "Q20": ["300.twolf", "429.mcf", "410.bwaves", "435.gromacs"],
    "Q21": ["175.vpr", "473.astar", "470.lbm", "416.gamess"],
}


def _generate_mix(prefix: str, index: int, cores: int) -> List[str]:
    """Seeded, category-balanced mix of ``cores`` profile names."""
    rng = make_rng(20120601, "mix", prefix, index, cores)
    friendly = [p.name for p in profiles_by_category("friendly")]
    streaming = [p.name for p in profiles_by_category("streaming")]
    insensitive = [p.name for p in profiles_by_category("insensitive")]
    everyone = sorted(PROFILES)
    names = [
        rng.choice(friendly),
        rng.choice(streaming),
        rng.choice(insensitive),
    ]
    while len(names) < cores:
        names.append(rng.choice(everyone))
    rng.shuffle(names)
    return names


def _build_mixes() -> Dict[str, List[str]]:
    mixes: Dict[str, List[str]] = dict(_QUAD)
    for i in range(1, 17):
        mixes[f"E{i}"] = _generate_mix("E", i, 8)
    for i in range(1, 21):
        mixes[f"S{i}"] = _generate_mix("S", i, 16)
    for i in range(1, 15):
        mixes[f"T{i}"] = _generate_mix("T", i, 32)
    return mixes


MIXES: Dict[str, List[str]] = _build_mixes()


def get_mix(name: str) -> List[str]:
    """Benchmark names of a mix (copy; callers may mutate).

    Raises:
        KeyError: for unknown mix names.
    """
    try:
        return list(MIXES[name])
    except KeyError:
        raise KeyError(f"unknown mix {name!r}; known: {sorted(MIXES)}") from None


def describe_mix(name: str) -> Dict[str, int]:
    """Category composition of a mix (e.g. ``{"friendly": 2, ...}``).

    Raises:
        KeyError: for unknown mix names.
    """
    from repro.workloads.spec import get_profile

    composition: Dict[str, int] = {}
    for member in get_mix(name):
        category = get_profile(member).category
        composition[category] = composition.get(category, 0) + 1
    return composition


def mixes_for_cores(cores: int) -> List[str]:
    """All mix names with exactly ``cores`` programs, in numeric order."""
    prefix = {4: "Q", 8: "E", 16: "S", 32: "T"}.get(cores)
    if prefix is None:
        raise ValueError(f"no mixes defined for {cores} cores (4/8/16/32 supported)")
    names = [name for name in MIXES if name.startswith(prefix)]
    return sorted(names, key=lambda n: int(n[1:]))
