"""Workload-source registry: one seam for every way to build a workload.

Historically every entry point (``run_workload``, ``RunSpec``, the CLI,
campaign fingerprints) resolved workloads through the SPEC-centric
string-mix path (``"Q7"`` or a list of benchmark names). Trace families
that are not lists of benchmark profiles — the multi-tenant key-value
traces of :mod:`repro.workloads.tenants` — cannot be expressed that way,
so workload construction is now a first-class API:

- :class:`WorkloadSource` is the protocol every workload family
  implements: a stable ``label``, a ``num_cores`` width, a canonical
  ``identity()`` payload for campaign fingerprints, and (for families the
  timing model can drive) ``profiles()``.
- :func:`resolve_workload` turns any historical ``mix`` argument — a mix
  name, a sequence of benchmark names/profiles, a ``"family:spec"``
  reference, or a ready ``WorkloadSource`` — into a source.
- :data:`WORKLOAD_FAMILIES` mirrors :data:`repro.experiments.registry.EXPERIMENTS`:
  families register a parser for ``"family:spec"`` references
  (``"tenants:web8"``), keeping references plain picklable strings that
  survive ``RunSpec``/store round-trips.

The classic string paths resolve to :class:`MixSource` /
:class:`BenchmarkListSource`, whose ``identity()`` payloads are exactly
the strings/lists the campaign fingerprinter always hashed — promoting
the resolver changes no existing fingerprint.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Dict, List, Sequence, Union

from repro.workloads.benchmark import BenchmarkProfile
from repro.workloads.mixes import get_mix
from repro.workloads.spec import get_profile

__all__ = [
    "WorkloadSource",
    "MixSource",
    "BenchmarkListSource",
    "WORKLOAD_FAMILIES",
    "register_family",
    "workload_families",
    "resolve_workload",
]


class WorkloadSource(ABC):
    """One runnable workload: a label, a width, and a canonical identity.

    Attributes:
        kind: family discriminator (``"mix"``, ``"benchmarks"``,
            ``"tenants"``, ...).
    """

    kind: str = "abstract"

    @property
    @abstractmethod
    def label(self) -> str:
        """Display/record label (``WorkloadResult.mix`` for runs of this source)."""

    @property
    @abstractmethod
    def num_cores(self) -> int:
        """How many cores (or tenants) the source drives."""

    @abstractmethod
    def identity(self) -> Union[str, list, dict]:
        """Canonical JSON-able payload for campaign fingerprints.

        Must capture everything the generated accesses depend on (besides
        the run seed): two sources with equal identities must describe the
        same workload, byte for byte.
        """

    def profiles(self) -> List[BenchmarkProfile]:
        """Benchmark profiles for the timing-model drive.

        Trace-based families (tenants) have no per-program profiles and
        raise ``TypeError``; callers that can replay raw traces should
        check ``kind`` instead of calling this speculatively.
        """
        raise TypeError(
            f"{self.kind!r} workloads have no benchmark profiles; "
            "they replay as raw traces (see docs/tenancy.md)"
        )


class MixSource(WorkloadSource):
    """A named mix from :data:`repro.workloads.mixes.MIXES` (``"Q7"``)."""

    kind = "mix"

    def __init__(self, name: str) -> None:
        self.name = name

    @property
    def label(self) -> str:
        return self.name

    @property
    def num_cores(self) -> int:
        return len(get_mix(self.name))

    def identity(self) -> str:
        return self.name

    def profiles(self) -> List[BenchmarkProfile]:
        return [get_profile(n) for n in get_mix(self.name)]

    def __repr__(self) -> str:
        return f"MixSource({self.name!r})"


class BenchmarkListSource(WorkloadSource):
    """An explicit sequence of benchmark names and/or profiles."""

    kind = "benchmarks"

    def __init__(self, items: Sequence) -> None:
        self.items = tuple(items)

    @property
    def label(self) -> str:
        return "custom"

    @property
    def num_cores(self) -> int:
        return len(self.items)

    def identity(self) -> list:
        return [
            item if isinstance(item, str) else getattr(item, "name", str(item))
            for item in self.items
        ]

    def profiles(self) -> List[BenchmarkProfile]:
        return [
            item if isinstance(item, BenchmarkProfile) else get_profile(item)
            for item in self.items
        ]

    def __repr__(self) -> str:
        return f"BenchmarkListSource({self.identity()})"


#: ``"family:spec"`` parsers, keyed by family name. Register with
#: :func:`register_family`; built-in families self-register on first use.
WORKLOAD_FAMILIES: Dict[str, Callable[[str], WorkloadSource]] = {}


def register_family(
    name: str, parser: Callable[[str], WorkloadSource], overwrite: bool = False
) -> None:
    """Register ``parser`` for ``"{name}:{spec}"`` workload references.

    Args:
        name: family prefix; must not contain ``":"``.
        parser: ``parser(spec) -> WorkloadSource`` for the text after the
            colon.
        overwrite: allow replacing an existing family (default: raise).
    """
    if ":" in name:
        raise ValueError(f"family name must not contain ':', got {name!r}")
    if name in WORKLOAD_FAMILIES and not overwrite:
        raise ValueError(f"workload family {name!r} is already registered")
    WORKLOAD_FAMILIES[name] = parser


def workload_families() -> List[str]:
    """Registered family names (built-ins included), sorted."""
    _ensure_builtin_families()
    return sorted(WORKLOAD_FAMILIES)


def _ensure_builtin_families() -> None:
    # Imported on demand: registry must stay import-cycle-free (tenants
    # imports this module for WorkloadSource/register_family).
    if "tenants" not in WORKLOAD_FAMILIES:
        import repro.workloads.tenants  # noqa: F401  (registers itself)
    if "shared" not in WORKLOAD_FAMILIES:
        import repro.workloads.shared  # noqa: F401  (registers itself)


def resolve_workload(ref: Union[str, Sequence, WorkloadSource]) -> WorkloadSource:
    """Resolve any workload reference to a :class:`WorkloadSource`.

    Accepts, in order of precedence:

    - a ready :class:`WorkloadSource` (returned as-is),
    - a ``"family:spec"`` string, dispatched through
      :data:`WORKLOAD_FAMILIES` (e.g. ``"tenants:web8"``),
    - a mix name (``"Q7"``),
    - a sequence of benchmark names and/or
      :class:`~repro.workloads.benchmark.BenchmarkProfile` objects.

    Raises:
        KeyError: for an unknown ``family:`` prefix (message lists the
            registered families).
        TypeError: for arguments that are none of the above.
    """
    if isinstance(ref, WorkloadSource):
        return ref
    if isinstance(ref, str):
        if ":" in ref:
            family, spec = ref.split(":", 1)
            _ensure_builtin_families()
            try:
                parser = WORKLOAD_FAMILIES[family]
            except KeyError:
                raise KeyError(
                    f"unknown workload family {family!r}; "
                    f"known: {sorted(WORKLOAD_FAMILIES)}"
                ) from None
            return parser(spec)
        return MixSource(ref)
    if isinstance(ref, Sequence):
        return BenchmarkListSource(ref)
    raise TypeError(
        "workload must be a WorkloadSource, a mix name, a 'family:spec' "
        f"reference, or a sequence of benchmarks; got {type(ref).__name__}"
    )
