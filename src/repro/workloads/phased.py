"""Phase-changing workloads.

The catalog profiles are stationary — ideal for calibration, but real
programs move through phases (a working-set change every few hundred
million instructions). :class:`PhasedProfile` chains catalog-style
profiles into a phase schedule so the interval controller's *adaptivity*
can be exercised: PriSM must re-learn targets when the active phase's
reuse behaviour changes, and the Fig. 11 stability story becomes a
per-phase property instead of a global one.

The phased stream keeps the ``next_access`` protocol, so it drops into
:class:`~repro.cpu.system.MultiCoreSystem` like any other stream.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.util.rng import derive_seed
from repro.workloads.benchmark import AccessStream, BenchmarkProfile

__all__ = ["PhasedProfile", "PhasedStream"]


class PhasedProfile:
    """A cyclic schedule of (profile, instructions) phases.

    Args:
        phases: sequence of ``(profile, instruction_count)`` pairs; the
            schedule repeats after the last phase.
        name: label for reports (defaults to a ``+``-join of phase names).

    The timing attributes (``mem_ratio``, ``mlp``, ``cpi_base``) a
    :class:`~repro.cpu.core_model.CoreTimingModel` reads come from the
    *first* phase's profile for construction; per-access timing follows
    the active phase through the stream's gap/address draws. For the
    core model's ``cpi_base`` (a scalar), phases should share a similar
    base CPI — the interesting phase changes are reuse-behaviour changes.
    """

    def __init__(
        self, phases: Sequence[Tuple[BenchmarkProfile, int]], name: str = None
    ) -> None:
        if not phases:
            raise ValueError("a phased profile needs at least one phase")
        for profile, instructions in phases:
            if instructions < 1:
                raise ValueError(
                    f"phase {profile.name!r} needs >= 1 instruction, got {instructions}"
                )
        self.phases = list(phases)
        self.name = name or "+".join(p.name for p, _ in phases)
        first = phases[0][0]
        self.mem_ratio = first.mem_ratio
        self.mlp = first.mlp
        self.cpi_base = first.cpi_base
        self.category = "phased"

    @property
    def mean_gap(self) -> float:
        return 1.0 / self.mem_ratio

    def stream(self, seed: int = 0, scale: float = 1.0) -> "PhasedStream":
        return PhasedStream(self, seed=seed, scale=scale)

    def footprint(self, scale: float = 1.0) -> int:
        return max(p.footprint(scale) for p, _ in self.phases)


class PhasedStream:
    """Stream that switches underlying profile streams on phase boundaries.

    Each phase gets its own address space offset so a phase change looks
    like what it is — a new working set, not a re-visit of the old one.
    """

    #: Address offset between phases (footprints never collide).
    PHASE_STRIDE = 1 << 28

    def __init__(self, profile: PhasedProfile, seed: int = 0, scale: float = 1.0) -> None:
        self.profile = profile
        self._streams: List[AccessStream] = [
            AccessStream(p, seed=derive_seed(seed, "phase", i, p.name), scale=scale)
            for i, (p, _) in enumerate(profile.phases)
        ]
        self._lengths = [instructions for _, instructions in profile.phases]
        self._phase = 0
        self._instructions_in_phase = 0
        self.generated = 0
        self.phase_switches = 0

    @property
    def current_phase(self) -> int:
        """Index of the active phase."""
        return self._phase

    def next_access(self) -> Tuple[int, int]:
        gap, addr = self._streams[self._phase].next_access()
        self.generated += 1
        self._instructions_in_phase += gap
        result = (gap, addr + self._phase * self.PHASE_STRIDE)
        if self._instructions_in_phase >= self._lengths[self._phase]:
            self._instructions_in_phase = 0
            self._phase = (self._phase + 1) % len(self._streams)
            self.phase_switches += 1
        return result
