"""The named benchmark catalog.

Profiles are calibrated against the repo's reference cache scale
(N = 1024 blocks, the scaled 4 MB LLC of DESIGN.md §5) and mirror the
qualitative behaviour of the SPEC programs the paper names:

- **friendly** — working set comparable to the cache; large hit gains from
  extra space (``179.art``, ``300.twolf``, ``471.omnetpp``, ...). These are
  the programs Section 5.1 says PIPP/PriSM reward.
- **streaming** — sequential scans far larger than the cache; no reuse an
  LLC can capture (``470.lbm``, ``410.bwaves``, ``462.libquantum``, ...).
- **thrashing** — working sets several times the cache; shallow linear
  utility (``429.mcf``).
- **moderate** — mid-size sets mixing locality and scans (``168.wupwise``,
  ``401.bzip2``, ...).
- **insensitive** — small working sets or low memory intensity
  (``416.gamess``, ``444.namd``, ...); their performance barely depends on
  the LLC, which Fig. 10's QoS discussion relies on.

Every reuse footprint is modelled as *nested tiers* (a hot zone inside a
warm zone, often with a scan tail) rather than one flat uniform zone: real
programs' reuse-distance distributions are heavily skewed, which (a) gives
concave miss-rate-vs-allocation curves like real SPEC utility curves and
(b) lets recency-based replacement protect a program's hot tier naturally.
A flat uniform zone would make every block equally hot — an adversarially
sharp-cornered utility curve no real program exhibits.

The exact SPEC miss curves are unavailable without the benchmarks
themselves; the calibration targets class behaviour, not program identity
(DESIGN.md §2).
"""

from __future__ import annotations

from typing import Dict, List

from repro.workloads.benchmark import BenchmarkProfile
from repro.workloads.zones import ScanZone, UniformZone

__all__ = ["PROFILES", "get_profile", "profiles_by_category"]


def _u(weight: float, size: int) -> UniformZone:
    return UniformZone(weight, size)


def _s(weight: float, size: int) -> ScanZone:
    return ScanZone(weight, size)


_CATALOG: List[BenchmarkProfile] = [
    # -- cache friendly ---------------------------------------------------
    # Memory intensity is deliberately spread within this class: the
    # programs the paper's narrative feeds first (179.art, 471.omnetpp)
    # are both the most cache-hungry *and* the most memory-intensive, so
    # hit-volume-driven allocation (Alg. 1) and ANTT agree on who matters.
    BenchmarkProfile("179.art", (_u(0.35, 96), _u(0.60, 830), _s(0.05, 2048)),
                     mem_ratio=0.055, mlp=1.6, cpi_base=0.45, category="friendly"),
    BenchmarkProfile("300.twolf", (_u(0.40, 48), _u(0.60, 600)),
                     mem_ratio=0.022, mlp=1.3, cpi_base=0.55, category="friendly"),
    BenchmarkProfile("471.omnetpp", (_u(0.35, 64), _u(0.60, 800), _s(0.05, 1500)),
                     mem_ratio=0.040, mlp=1.5, cpi_base=0.50, category="friendly"),
    BenchmarkProfile("450.soplex", (_u(0.30, 96), _u(0.60, 820), _s(0.10, 3000)),
                     mem_ratio=0.035, mlp=1.8, cpi_base=0.50, category="friendly"),
    BenchmarkProfile("473.astar", (_u(0.35, 48), _u(0.65, 680)),
                     mem_ratio=0.018, mlp=1.2, cpi_base=0.60, category="friendly"),
    BenchmarkProfile("175.vpr", (_u(0.35, 32), _u(0.65, 500)),
                     mem_ratio=0.018, mlp=1.3, cpi_base=0.55, category="friendly"),
    BenchmarkProfile("482.sphinx3", (_u(0.30, 80), _u(0.55, 540), _s(0.15, 1600)),
                     mem_ratio=0.028, mlp=1.6, cpi_base=0.50, category="friendly"),
    # -- moderate -----------------------------------------------------------
    BenchmarkProfile("168.wupwise", (_u(0.30, 64), _u(0.30, 400), _s(0.40, 1536)),
                     mem_ratio=0.030, mlp=2.2, cpi_base=0.45, category="moderate"),
    BenchmarkProfile("401.bzip2", (_u(0.35, 64), _u(0.35, 380), _s(0.30, 768)),
                     mem_ratio=0.020, mlp=1.6, cpi_base=0.55, category="moderate"),
    BenchmarkProfile("456.hmmer", (_u(0.50, 48), _u(0.40, 280), _u(0.10, 900)),
                     mem_ratio=0.015, mlp=1.4, cpi_base=0.50, category="moderate"),
    BenchmarkProfile("464.h264ref", (_u(0.45, 64), _u(0.35, 256), _s(0.20, 512)),
                     mem_ratio=0.012, mlp=1.5, cpi_base=0.50, category="moderate"),
    BenchmarkProfile("183.equake", (_u(0.25, 48), _u(0.25, 300), _s(0.50, 2048)),
                     mem_ratio=0.035, mlp=2.5, cpi_base=0.45, category="moderate"),
    BenchmarkProfile("188.ammp", (_u(0.30, 64), _u(0.40, 540), _s(0.30, 1024)),
                     mem_ratio=0.028, mlp=1.8, cpi_base=0.50, category="moderate"),
    # -- streaming ------------------------------------------------------------
    BenchmarkProfile("470.lbm", (_s(0.97, 12288), _u(0.03, 16)),
                     mem_ratio=0.050, mlp=3.5, cpi_base=0.40, category="streaming"),
    BenchmarkProfile("410.bwaves", (_s(0.95, 8192), _u(0.05, 24)),
                     mem_ratio=0.040, mlp=3.0, cpi_base=0.45, category="streaming"),
    BenchmarkProfile("462.libquantum", (_s(0.99, 6144), _u(0.01, 8)),
                     mem_ratio=0.045, mlp=3.0, cpi_base=0.40, category="streaming"),
    BenchmarkProfile("171.swim", (_s(0.90, 10240), _u(0.10, 64)),
                     mem_ratio=0.040, mlp=2.8, cpi_base=0.45, category="streaming"),
    # -- thrashing ---------------------------------------------------------------
    BenchmarkProfile("429.mcf", (_u(0.15, 128), _u(0.85, 5120)),
                     mem_ratio=0.050, mlp=1.8, cpi_base=0.45, category="thrashing"),
    BenchmarkProfile("181.mcf", (_u(0.20, 128), _u(0.80, 4096)),
                     mem_ratio=0.045, mlp=1.6, cpi_base=0.50, category="thrashing"),
    # -- cache insensitive -----------------------------------------------------
    BenchmarkProfile("416.gamess", (_u(0.80, 16), _u(0.20, 40)),
                     mem_ratio=0.003, mlp=1.0, cpi_base=0.35, category="insensitive"),
    BenchmarkProfile("444.namd", (_u(0.70, 24), _u(0.30, 96)),
                     mem_ratio=0.004, mlp=1.0, cpi_base=0.40, category="insensitive"),
    BenchmarkProfile("458.sjeng", (_u(0.70, 48), _u(0.30, 192)),
                     mem_ratio=0.006, mlp=1.1, cpi_base=0.45, category="insensitive"),
    BenchmarkProfile("403.gcc", (_u(0.70, 64), _u(0.30, 400)),
                     mem_ratio=0.008, mlp=1.2, cpi_base=0.50, category="insensitive"),
    BenchmarkProfile("435.gromacs", (_u(0.80, 48), _u(0.20, 192)),
                     mem_ratio=0.005, mlp=1.0, cpi_base=0.40, category="insensitive"),
]

PROFILES: Dict[str, BenchmarkProfile] = {p.name: p for p in _CATALOG}


def get_profile(name: str) -> BenchmarkProfile:
    """Look up a profile by catalog name.

    Raises:
        KeyError: with the list of known names, for typo-friendly failures.
    """
    try:
        return PROFILES[name]
    except KeyError:
        raise KeyError(f"unknown benchmark {name!r}; known: {sorted(PROFILES)}") from None


def profiles_by_category(category: str) -> List[BenchmarkProfile]:
    """All profiles of one qualitative class (sorted by name)."""
    found = sorted(
        (p for p in PROFILES.values() if p.category == category), key=lambda p: p.name
    )
    if not found:
        categories = sorted({p.category for p in PROFILES.values()})
        raise ValueError(f"unknown category {category!r}; known: {categories}")
    return found
