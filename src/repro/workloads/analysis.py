"""Workload characterisation tools.

Library versions of the analyses the calibration tests run inline:
measure a profile's miss-rate-vs-allocation curve (its *utility curve*),
its LRU reuse-distance histogram, and a qualitative classification — the
same lenses the paper (and UCP before it) uses to reason about which
programs deserve cache.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.cache.cache import SharedCache
from repro.cache.geometry import CacheGeometry
from repro.workloads.benchmark import BenchmarkProfile

__all__ = ["miss_curve", "reuse_distance_histogram", "classify_profile"]


def miss_curve(
    profile: BenchmarkProfile,
    cache_blocks: Sequence[int],
    assoc: int = 16,
    accesses: int = 30_000,
    seed: int = 0,
    scale: float = 1.0,
) -> List[float]:
    """Stand-alone miss rate at each cache size (in blocks).

    Args:
        profile: the benchmark.
        cache_blocks: cache sizes to measure, in blocks (powers of two
            times ``assoc``).
        assoc: associativity of the measurement caches.
        accesses: stream length per point.
        seed: stream seed (same stream at every size).

    Returns:
        Miss rates, one per entry of ``cache_blocks``.
    """
    if not cache_blocks:
        raise ValueError("need at least one cache size")
    rates = []
    for blocks in cache_blocks:
        geometry = CacheGeometry(blocks * 64, 64, assoc)
        cache = SharedCache(geometry, 1)
        stream = profile.stream(seed=seed, scale=scale)
        misses = 0
        for _ in range(accesses):
            _, addr = stream.next_access()
            misses += not cache.access(0, addr).hit
        rates.append(misses / accesses)
    return rates


def reuse_distance_histogram(
    profile: BenchmarkProfile,
    accesses: int = 30_000,
    max_distance: int = 4096,
    seed: int = 0,
    scale: float = 1.0,
) -> Dict[str, int]:
    """LRU stack-distance histogram of a profile's stream.

    Returns:
        Buckets ``{"<=16": n, "<=64": n, "<=256": n, "<=1024": n,
        "<=max": n, "cold_or_beyond": n}`` — coarse on purpose; the exact
        stack algorithm is O(distance) per access.
    """
    stack: List[int] = []
    buckets = {"<=16": 0, "<=64": 0, "<=256": 0, "<=1024": 0, "<=max": 0,
               "cold_or_beyond": 0}
    stream = profile.stream(seed=seed, scale=scale)
    for _ in range(accesses):
        _, addr = stream.next_access()
        try:
            distance = stack.index(addr)
            del stack[distance]
        except ValueError:
            distance = None
        stack.insert(0, addr)
        if len(stack) > max_distance:
            stack.pop()
        if distance is None:
            buckets["cold_or_beyond"] += 1
        elif distance < 16:
            buckets["<=16"] += 1
        elif distance < 64:
            buckets["<=64"] += 1
        elif distance < 256:
            buckets["<=256"] += 1
        elif distance < 1024:
            buckets["<=1024"] += 1
        else:
            buckets["<=max"] += 1
    return buckets


def classify_profile(
    profile: BenchmarkProfile,
    reference_blocks: int = 1024,
    accesses: int = 20_000,
    seed: int = 0,
) -> str:
    """Heuristic class from measured behaviour (not the declared category).

    Mirrors the catalog's taxonomy: ``insensitive`` (high hit rate at 1/8
    of the reference cache), ``streaming``/``thrashing`` (low hit rate
    even at the full reference, split by how much the curve moved), else
    ``friendly``/``moderate`` by total gain.
    """
    small, full = miss_curve(
        profile, [max(16, reference_blocks // 8), reference_blocks],
        accesses=accesses, seed=seed,
    )
    small_hit, full_hit = 1 - small, 1 - full
    if small_hit > 0.9:
        return "insensitive"
    if full_hit < 0.45:
        return "streaming" if full_hit - small_hit < 0.1 else "thrashing"
    return "friendly" if full_hit - small_hit > 0.25 else "moderate"
