"""Benchmark profiles and their access streams.

A :class:`BenchmarkProfile` bundles the zone mixture (what the program
references) with the timing parameters the CPU model needs (how often it
references and how much latency it can hide):

- ``mem_ratio`` — LLC-visible accesses per instruction (the stream is the
  post-L1 reference stream; L1 filtering is folded into the profile, see
  DESIGN.md §2),
- ``mlp`` — memory-level parallelism: how many outstanding misses overlap,
  dividing the exposed miss penalty,
- ``cpi_base`` — CPI of the core when every access hits.

:class:`AccessStream` is the per-run instantiation: a seeded iterator of
``(gap_instructions, block_address)`` pairs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Tuple

from repro.util.rng import make_rng
from repro.util.validate import check_positive
from repro.workloads.zones import ZoneModel

__all__ = ["BenchmarkProfile", "AccessStream"]


@dataclass(frozen=True)
class BenchmarkProfile:
    """A synthetic SPEC-like benchmark.

    Attributes:
        name: catalog name (e.g. ``"179.art"``).
        zones: zone mixture defining the reference stream.
        mem_ratio: LLC accesses per instruction.
        mlp: memory-level parallelism (>= 1).
        cpi_base: base CPI with an ideal memory system.
        category: qualitative class — ``friendly``, ``streaming``,
            ``insensitive``, ``moderate`` or ``thrashing``.
    """

    name: str
    zones: Sequence = field(default_factory=tuple)
    mem_ratio: float = 0.02
    mlp: float = 1.5
    cpi_base: float = 0.5
    category: str = "moderate"

    def __post_init__(self) -> None:
        check_positive("mem_ratio", self.mem_ratio)
        if self.mem_ratio > 1.0:
            raise ValueError(f"mem_ratio {self.mem_ratio} exceeds one access per instruction")
        if self.mlp < 1.0:
            raise ValueError(f"mlp must be >= 1, got {self.mlp}")
        check_positive("cpi_base", self.cpi_base)
        if not self.zones:
            raise ValueError(f"profile {self.name!r} has no zones")

    @property
    def mean_gap(self) -> float:
        """Mean instructions between consecutive LLC accesses."""
        return 1.0 / self.mem_ratio

    def stream(self, seed: int = 0, scale: float = 1.0) -> "AccessStream":
        """Instantiate a seeded access stream for one run."""
        return AccessStream(self, seed=seed, scale=scale)

    def footprint(self, scale: float = 1.0) -> int:
        """Total footprint in blocks at the given scale."""
        return ZoneModel(self.zones, seed=0, scale=scale).footprint


class AccessStream:
    """Seeded iterator of ``(gap_instructions, block_address)`` pairs.

    Gaps are drawn uniformly in ``[0.5, 1.5] * mean_gap`` (at least one
    instruction), so instruction counts accumulate with mild jitter around
    the profile's memory intensity.
    """

    def __init__(self, profile: BenchmarkProfile, seed: int = 0, scale: float = 1.0) -> None:
        self.profile = profile
        self.zone_model = ZoneModel(profile.zones, seed=seed, scale=scale)
        self._rng = make_rng(seed, "gaps", profile.name)
        self._gap_lo = max(1, int(profile.mean_gap * 0.5))
        self._gap_hi = max(self._gap_lo, int(profile.mean_gap * 1.5))
        self.generated = 0

    def next_access(self) -> Tuple[int, int]:
        """The next (gap, address) pair."""
        self.generated += 1
        return (
            self._rng.randint(self._gap_lo, self._gap_hi),
            self.zone_model.next_address(),
        )

    def __iter__(self):
        while True:
            yield self.next_access()
