"""Supplementary benchmark profiles.

Additional SPEC-like programs beyond the core catalog. They are kept out
of :data:`repro.workloads.spec.PROFILES` by default because the paper's
E/S/T mixes are *generated deterministically from the core catalog* —
adding to it would silently change which programs those mixes contain and
invalidate recorded results. Use these for custom workloads, or call
:func:`register_extra_profiles` to make them available to
``get_profile``/CLI by name.
"""

from __future__ import annotations

from typing import Dict, List

from repro.workloads.benchmark import BenchmarkProfile
from repro.workloads.spec import PROFILES
from repro.workloads.zones import ScanZone, UniformZone

__all__ = ["EXTRA_PROFILES", "register_extra_profiles", "unregister_extra_profiles"]


def _u(weight: float, size: int) -> UniformZone:
    return UniformZone(weight, size)


def _s(weight: float, size: int) -> ScanZone:
    return ScanZone(weight, size)


_EXTRA: List[BenchmarkProfile] = [
    # Lattice-QCD style: streaming with a small reused kernel table.
    BenchmarkProfile("433.milc", (_s(0.85, 7168), _u(0.15, 96)),
                     mem_ratio=0.038, mlp=2.6, cpi_base=0.45, category="streaming"),
    # FDTD solver: huge sequential sweeps.
    BenchmarkProfile("459.GemsFDTD", (_s(0.92, 9216), _u(0.08, 48)),
                     mem_ratio=0.042, mlp=3.0, cpi_base=0.45, category="streaming"),
    # Stencil with moderate blocking: mid-size reuse + scan.
    BenchmarkProfile("436.cactusADM", (_u(0.35, 72), _u(0.35, 460), _s(0.30, 1792)),
                     mem_ratio=0.026, mlp=2.0, cpi_base=0.50, category="moderate"),
    # Game tree search: small hot state, low intensity.
    BenchmarkProfile("445.gobmk", (_u(0.75, 56), _u(0.25, 224)),
                     mem_ratio=0.007, mlp=1.1, cpi_base=0.50, category="insensitive"),
    # FE solver: compute bound with a small reused matrix window.
    BenchmarkProfile("454.calculix", (_u(0.85, 40), _u(0.15, 160)),
                     mem_ratio=0.004, mlp=1.0, cpi_base=0.40, category="insensitive"),
    # Multigrid: nested grids, partially cache-resident.
    BenchmarkProfile("172.mgrid", (_u(0.30, 88), _u(0.40, 520), _s(0.30, 2304)),
                     mem_ratio=0.030, mlp=2.4, cpi_base=0.45, category="moderate"),
    # Pointer-chasing database-ish: big flat set, shallow utility.
    BenchmarkProfile("471.astar-biglakes", (_u(0.20, 128), _u(0.80, 3584)),
                     mem_ratio=0.040, mlp=1.5, cpi_base=0.50, category="thrashing"),
    # Mesh optimiser: cache friendly, knees near the reference cache.
    BenchmarkProfile("447.dealII", (_u(0.35, 72), _u(0.65, 760)),
                     mem_ratio=0.024, mlp=1.4, cpi_base=0.55, category="friendly"),
]

EXTRA_PROFILES: Dict[str, BenchmarkProfile] = {p.name: p for p in _EXTRA}


def register_extra_profiles() -> List[str]:
    """Add the extras to the main catalog (idempotent).

    Returns:
        The names newly registered.

    Note: pre-built mixes are unaffected — they were generated from the
    core catalog at import time.
    """
    added = []
    for name, profile in EXTRA_PROFILES.items():
        if name not in PROFILES:
            PROFILES[name] = profile
            added.append(name)
    return added


def unregister_extra_profiles() -> None:
    """Remove the extras from the main catalog (for test isolation)."""
    for name in EXTRA_PROFILES:
        PROFILES.pop(name, None)
