"""Multi-tenant key-value cache traces (the PriSM-as-memcached family).

Memshare frames datacenter web caching as the same problem the paper
solves for cores: many tenants contend for one cache, and the operator
must decide who keeps their blocks. This family generates per-tenant
key-value request streams — Zipfian-popularity lookups, sequential
scans, and phase-shifting working sets — interleaved into one shared
trace where *tenant index = core index*, so every scheme in the
repertoire (PriSM-H/F/Q, LRU, the cliff-aware baseline) runs unchanged.

Design constraints, all load-bearing:

- **Lazy and bounded.** Traces span millions of keys and any number of
  requests, but are generated chunk by chunk as numpy arrays
  (:meth:`TenantWorkload.chunks`); nothing proportional to the trace
  length is ever held in memory, and each chunk encodes directly via
  :func:`repro.cache.encode.encode_accesses` for the vector backend.
- **Deterministic.** The stream is a pure function of the workload
  identity and the seed: tenant interleaving and per-tenant key draws
  come from independent :func:`~repro.util.rng.derive_seed`-labelled
  PCG64 streams, and per-tenant draws are consumed in request order, so
  the concatenated trace does not depend on the chunk size. Replaying
  the same workload through the classic and vector engines therefore
  produces bit-identical results.
- **Addressable.** Tenant ``t``'s key ``k`` maps to block address
  ``t * 2**36 + permute(k)`` — the same per-owner address stride the
  timing model uses — where ``permute`` is an affine bijection that
  decorrelates popularity rank from cache-set index (scans stay
  sequential on purpose).

Zipfian draws use the continuous inverse-CDF power-law approximation
(exact Zipf normalisation over millions of keys is O(N); the
approximation is O(1) per draw and preserves the hot-key mass that
drives cache behaviour).
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass
from typing import Callable, Dict, Iterator, List, Sequence, Tuple

import numpy as np

from repro.util.rng import derive_seed
from repro.workloads.registry import WorkloadSource, register_family

__all__ = [
    "TenantSpec",
    "TenantWorkload",
    "TENANT_PRESETS",
    "get_tenant_workload",
    "tenant_presets",
]

#: Bump when trace generation changes: the version is part of the
#: workload identity, so old campaign fingerprints never collide with
#: traces generated under new rules.
TENANT_FAMILY_VERSION = 1

#: Per-tenant address stride (mirrors the timing model's per-core stride).
TENANT_ADDRESS_STRIDE = 1 << 36

#: Default generation chunk, in requests.
DEFAULT_CHUNK = 1 << 16

_PATTERNS = ("zipfian", "scan", "phase")


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's traffic model.

    Attributes:
        name: tenant label (unique within a workload).
        pattern: ``"zipfian"`` (skewed point lookups), ``"scan"``
            (sequential wrap-around sweep), or ``"phase"`` (Zipfian over
            a working-set region that shifts every ``phase_period``
            requests).
        keys: working-set size in distinct keys (= cache blocks).
        skew: Zipf exponent ``s`` for zipfian/phase patterns.
        rate: relative request-rate weight against the other tenants.
        phases: number of disjoint key regions a ``"phase"`` tenant
            cycles through.
        phase_period: requests between working-set shifts.
    """

    name: str
    pattern: str = "zipfian"
    keys: int = 1 << 20
    skew: float = 0.9
    rate: float = 1.0
    phases: int = 4
    phase_period: int = 50_000

    def __post_init__(self) -> None:
        if self.pattern not in _PATTERNS:
            raise ValueError(
                f"pattern must be one of {_PATTERNS}, got {self.pattern!r}"
            )
        if self.keys < 1:
            raise ValueError(f"keys must be >= 1, got {self.keys}")
        if self.rate <= 0:
            raise ValueError(f"rate must be > 0, got {self.rate}")
        if self.skew < 0:
            raise ValueError(f"skew must be >= 0, got {self.skew}")
        if self.phases < 1 or self.phase_period < 1:
            raise ValueError("phases and phase_period must be >= 1")


def _power_law_keys(u: np.ndarray, n: int, s: float) -> np.ndarray:
    """Inverse-CDF power-law ranks in ``[0, n)`` from uniforms ``u``."""
    if abs(s - 1.0) < 1e-9:
        x = np.power(n + 1.0, u)
    else:
        t = math.pow(n + 1.0, 1.0 - s)
        x = np.power(u * (t - 1.0) + 1.0, 1.0 / (1.0 - s))
    ranks = np.floor(x).astype(np.int64) - 1
    return np.clip(ranks, 0, n - 1)


def _coprime_multiplier(n: int) -> int:
    """An affine-permutation multiplier coprime with ``n`` (Knuth seed)."""
    if n <= 2:
        return 1
    m = 2654435761 % n
    m = max(m, 1)
    while math.gcd(m, n) != 1:
        m += 1
    return m


class _TenantStream:
    """Per-tenant draw state: consumed strictly in that tenant's request order."""

    def __init__(self, spec: TenantSpec, seed: int) -> None:
        self.spec = spec
        self.rng = np.random.Generator(np.random.PCG64(seed))
        self.position = 0  # scan cursor
        self.requests = 0  # lifetime request counter (phase schedule)
        self.multiplier = _coprime_multiplier(spec.keys)

    def draw(self, count: int) -> np.ndarray:
        """The tenant's next ``count`` keys, as int64 ranks in ``[0, keys)``."""
        spec = self.spec
        if spec.pattern == "scan":
            keys = (self.position + np.arange(count, dtype=np.int64)) % spec.keys
            self.position = int((self.position + count) % spec.keys)
            self.requests += count
            return keys
        if spec.pattern == "zipfian":
            ranks = _power_law_keys(self.rng.random(count), spec.keys, spec.skew)
        else:  # phase
            region = max(1, spec.keys // spec.phases)
            indices = self.requests + np.arange(count, dtype=np.int64)
            phase = (indices // spec.phase_period) % spec.phases
            ranks = phase * region + _power_law_keys(
                self.rng.random(count), region, spec.skew
            )
        self.requests += count
        return (ranks * self.multiplier) % spec.keys


class TenantWorkload(WorkloadSource):
    """A named set of tenants sharing one cache (tenant index = core index)."""

    kind = "tenants"

    def __init__(self, name: str, tenants: Sequence[TenantSpec]) -> None:
        if not tenants:
            raise ValueError("a tenant workload needs at least one tenant")
        names = [t.name for t in tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"tenant names must be unique, got {names}")
        self.name = name
        self.tenants: Tuple[TenantSpec, ...] = tuple(tenants)

    @property
    def label(self) -> str:
        return f"tenants:{self.name}"

    @property
    def num_cores(self) -> int:
        return len(self.tenants)

    @property
    def tenant_names(self) -> List[str]:
        return [t.name for t in self.tenants]

    def identity(self) -> dict:
        return {
            "kind": self.kind,
            "version": TENANT_FAMILY_VERSION,
            "name": self.name,
            "tenants": [asdict(t) for t in self.tenants],
        }

    def __repr__(self) -> str:
        return f"TenantWorkload({self.name!r}, {len(self.tenants)} tenants)"

    # -- trace generation ----------------------------------------------------

    def rate_shares(self) -> List[float]:
        total = sum(t.rate for t in self.tenants)
        return [t.rate / total for t in self.tenants]

    def solo_requests(self, index: int, total_requests: int) -> int:
        """The deterministic request budget of one tenant run in isolation."""
        return max(1, round(total_requests * self.rate_shares()[index]))

    def _streams(self, seed: int) -> List[_TenantStream]:
        return [
            _TenantStream(t, derive_seed(seed, "tenants", self.name, t.name))
            for t in self.tenants
        ]

    def chunks(
        self, total_requests: int, seed: int, chunk_size: int = DEFAULT_CHUNK
    ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield the interleaved shared trace as ``(cores, addrs)`` chunks.

        The concatenation over chunks is independent of ``chunk_size``:
        interleaving uses one uniform per request against the cumulative
        rate distribution, and each tenant's key stream is consumed in
        that tenant's request order.
        """
        interleave = np.random.Generator(
            np.random.PCG64(derive_seed(seed, "tenants", self.name, "interleave"))
        )
        cum = np.cumsum(self.rate_shares())
        cum[-1] = 1.0  # guard float drift; searchsorted stays in range
        streams = self._streams(seed)
        produced = 0
        while produced < total_requests:
            n = min(chunk_size, total_requests - produced)
            cores = np.searchsorted(cum, interleave.random(n), side="right").astype(
                np.int64
            )
            addrs = np.empty(n, dtype=np.int64)
            for index, stream in enumerate(streams):
                mask = cores == index
                count = int(mask.sum())
                if count:
                    addrs[mask] = index * TENANT_ADDRESS_STRIDE + stream.draw(count)
            yield cores, addrs
            produced += n

    def tenant_chunks(
        self,
        index: int,
        total_requests: int,
        seed: int,
        chunk_size: int = DEFAULT_CHUNK,
    ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """One tenant's isolated stream (cores all 0) for stand-alone runs.

        Uses the same per-tenant seed labels as :meth:`chunks`, so the
        solo key sequence is a prefix-equal replay of the tenant's shared
        draws.
        """
        stream = _TenantStream(
            self.tenants[index],
            derive_seed(seed, "tenants", self.name, self.tenants[index].name),
        )
        produced = 0
        while produced < total_requests:
            n = min(chunk_size, total_requests - produced)
            addrs = stream.draw(n)  # solo runs own the whole cache: no stride
            yield np.zeros(n, dtype=np.int64), addrs
            produced += n


# -- named presets -----------------------------------------------------------


def _smoke4() -> TenantWorkload:
    """Small 4-tenant mix sized for CI smokes and unit tests."""
    return TenantWorkload(
        "smoke4",
        [
            TenantSpec("alpha", pattern="zipfian", keys=40_000, skew=0.9, rate=3.0),
            TenantSpec("bravo", pattern="zipfian", keys=80_000, skew=0.6, rate=2.0),
            TenantSpec("sweeper", pattern="scan", keys=30_000, rate=1.0),
            TenantSpec(
                "shifty",
                pattern="phase",
                keys=60_000,
                skew=1.0,
                rate=1.0,
                phases=4,
                phase_period=10_000,
            ),
        ],
    )


def _web8() -> TenantWorkload:
    """The 8-tenant Zipfian+scan acceptance mix (millions of keys)."""
    return TenantWorkload(
        "web8",
        [
            TenantSpec("hot", pattern="zipfian", keys=2_000_000, skew=1.2, rate=4.0),
            TenantSpec("social", pattern="zipfian", keys=4_000_000, skew=1.0, rate=3.0),
            TenantSpec("feed", pattern="zipfian", keys=1_000_000, skew=0.8, rate=2.0),
            TenantSpec(
                "long-tail", pattern="zipfian", keys=8_000_000, skew=0.6, rate=2.0
            ),
            TenantSpec("scan-a", pattern="scan", keys=500_000, rate=1.0),
            TenantSpec("scan-b", pattern="scan", keys=50_000, rate=1.0),
            TenantSpec(
                "diurnal",
                pattern="phase",
                keys=2_000_000,
                skew=1.0,
                rate=2.0,
                phases=4,
                phase_period=100_000,
            ),
            TenantSpec(
                "batch",
                pattern="phase",
                keys=1_000_000,
                skew=0.7,
                rate=1.0,
                phases=2,
                phase_period=150_000,
            ),
        ],
    )


#: Named workloads reachable as ``"tenants:<name>"`` everywhere a mix is
#: accepted (run_workload, RunSpec, campaigns, the CLI).
TENANT_PRESETS: Dict[str, Callable[[], TenantWorkload]] = {
    "smoke4": _smoke4,
    "web8": _web8,
}


def tenant_presets() -> List[str]:
    """Registered tenant preset names, sorted."""
    return sorted(TENANT_PRESETS)


def get_tenant_workload(name: str) -> TenantWorkload:
    """Build a preset tenant workload by name.

    Raises:
        KeyError: listing the known presets.
    """
    try:
        factory = TENANT_PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown tenant workload {name!r}; known: {tenant_presets()}"
        ) from None
    return factory()


register_family("tenants", get_tenant_workload)
