"""Synthetic multiprogrammed workloads.

The paper drives its evaluation with SPEC CPU programs; those are not
redistributable, so this package provides the documented substitution
(DESIGN.md §2): seeded *zone-model* benchmark profiles whose miss-rate-vs-
allocation curves and memory intensities span the same qualitative classes
the paper's analysis leans on — cache-friendly programs with knees, pure
streamers, cache-insensitive compute, and thrashing giants.

- :mod:`repro.workloads.zones` — the generative access model,
- :mod:`repro.workloads.benchmark` — profiles + access streams,
- :mod:`repro.workloads.spec` — the named catalog (``179.art`` etc.),
- :mod:`repro.workloads.mixes` — the Q/E/S/T workload mixes,
- :mod:`repro.workloads.trace` — record/replay of access traces,
- :mod:`repro.workloads.registry` — the :class:`WorkloadSource` protocol
  and :func:`resolve_workload`, the one seam every entry point
  (``run_workload``, campaigns, the CLI) resolves workloads through,
- :mod:`repro.workloads.tenants` — multi-tenant key-value traces
  (``"tenants:web8"``), the PriSM-as-memcached family.
"""

from repro.workloads.zones import ScanZone, UniformZone, ZoneModel
from repro.workloads.benchmark import AccessStream, BenchmarkProfile
from repro.workloads.spec import PROFILES, get_profile, profiles_by_category
from repro.workloads.mixes import MIXES, get_mix, mixes_for_cores
from repro.workloads.trace import Trace, record_trace
from repro.workloads.phased import PhasedProfile, PhasedStream
from repro.workloads.registry import (
    BenchmarkListSource,
    MixSource,
    WorkloadSource,
    register_family,
    resolve_workload,
    workload_families,
)
from repro.workloads.tenants import (
    TENANT_PRESETS,
    TenantSpec,
    TenantWorkload,
    get_tenant_workload,
    tenant_presets,
)

__all__ = [
    "WorkloadSource",
    "MixSource",
    "BenchmarkListSource",
    "register_family",
    "resolve_workload",
    "workload_families",
    "TenantSpec",
    "TenantWorkload",
    "TENANT_PRESETS",
    "get_tenant_workload",
    "tenant_presets",
    "PhasedProfile",
    "PhasedStream",
    "UniformZone",
    "ScanZone",
    "ZoneModel",
    "BenchmarkProfile",
    "AccessStream",
    "PROFILES",
    "get_profile",
    "profiles_by_category",
    "MIXES",
    "get_mix",
    "mixes_for_cores",
    "Trace",
    "record_trace",
]
