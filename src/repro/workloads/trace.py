"""Access-trace record and replay.

The live simulator pulls accesses straight from generators, but a file
trace format matters for two workflows the paper's methodology implies:
capturing a stream once and replaying it under many schemes (identical
input across comparisons), and importing external traces. Traces are
stored as compressed ``.npz`` with two parallel ``int64`` arrays (``gaps``
in instructions, ``addrs`` as block addresses) plus the generating
profile's name for provenance.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator, Tuple, Union

import numpy as np

from repro.workloads.benchmark import AccessStream, BenchmarkProfile

__all__ = ["Trace", "record_trace"]


class Trace:
    """An in-memory access trace (gaps + block addresses).

    Supports the same ``next_access`` protocol as
    :class:`~repro.workloads.benchmark.AccessStream` (wrapping around at the
    end, like the re-executed programs of the paper's methodology), so a
    trace can stand in for a live stream anywhere in the simulator.
    """

    def __init__(self, gaps: np.ndarray, addrs: np.ndarray, source: str = "") -> None:
        gaps = np.asarray(gaps, dtype=np.int64)
        addrs = np.asarray(addrs, dtype=np.int64)
        if gaps.shape != addrs.shape or gaps.ndim != 1:
            raise ValueError(
                f"gaps {gaps.shape} and addrs {addrs.shape} must be equal-length 1-D arrays"
            )
        if len(gaps) == 0:
            raise ValueError("a trace needs at least one access")
        if (gaps < 1).any():
            raise ValueError("every gap must be >= 1 instruction")
        if (addrs < 0).any():
            raise ValueError("block addresses must be non-negative")
        self.gaps = gaps
        self.addrs = addrs
        self.source = source
        self._pos = 0
        self.generated = 0

    def __len__(self) -> int:
        return len(self.gaps)

    def next_access(self) -> Tuple[int, int]:
        """Next (gap, address), wrapping at the end of the trace."""
        i = self._pos
        self._pos = (i + 1) % len(self.gaps)
        self.generated += 1
        return int(self.gaps[i]), int(self.addrs[i])

    def __iter__(self) -> Iterator[Tuple[int, int]]:
        for gap, addr in zip(self.gaps, self.addrs):
            yield int(gap), int(addr)

    def rewind(self) -> None:
        """Reset the replay cursor to the beginning."""
        self._pos = 0

    # -- persistence --------------------------------------------------------

    def save(self, path: Union[str, Path]) -> None:
        """Write the trace as compressed ``.npz``."""
        np.savez_compressed(
            Path(path), gaps=self.gaps, addrs=self.addrs, source=np.str_(self.source)
        )

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Trace":
        """Read a trace written by :meth:`save`."""
        with np.load(Path(path), allow_pickle=False) as data:
            return cls(data["gaps"], data["addrs"], source=str(data["source"]))


def record_trace(
    profile: BenchmarkProfile, length: int, seed: int = 0, scale: float = 1.0
) -> Trace:
    """Capture ``length`` accesses of a profile's stream into a trace."""
    if length < 1:
        raise ValueError(f"length must be >= 1, got {length}")
    stream = AccessStream(profile, seed=seed, scale=scale)
    gaps = np.empty(length, dtype=np.int64)
    addrs = np.empty(length, dtype=np.int64)
    for i in range(length):
        gaps[i], addrs[i] = stream.next_access()
    return Trace(gaps, addrs, source=profile.name)
