"""Shared-data scale-out traces (the cluster-granular PriSM family).

PriSM's bookkeeping is per accounting owner: eviction probabilities,
allocation targets and occupancy counters all scale with the number of
managed entities. At 16-64 cores, per-core management both costs more
and starves the allocator of signal (each core's interval miss count
shrinks as the core count grows). The scale-out answer — implemented in
:mod:`repro.clustering` — is to group cores into clusters of similar
miss behaviour and run the machinery at cluster granularity.

This family generates the workloads that regime needs: many homogeneous
cores, each splitting its accesses between a private Zipfian pool and a
pool shared with its *sharing group* (``degree`` adjacent cores). Shared
blocks are touched by several cores, which is exactly what forces the
accounting-owner model: a block's occupancy charge goes to the owner
that filled it (translated through the cluster map when one is in
force), while the optional sharer bitmask records everyone who hit it.

Same load-bearing constraints as :mod:`repro.workloads.tenants`:

- **Lazy and bounded** — chunked numpy generation, nothing proportional
  to the trace length in memory.
- **Deterministic and chunk-invariant** — per-core draws come from
  per-core :func:`~repro.util.rng.derive_seed`-labelled PCG64 streams
  consumed strictly in that core's request order (the per-request
  ``(select, key)`` uniform pair is drawn as one sequential block), so
  the concatenated trace is independent of the chunk size and the
  classic and vector engines replay byte-identical streams.
- **Addressable** — core ``c``'s private key ``k`` maps to
  ``c * 2**36 + permute(k)``; sharing group ``g``'s key maps to
  ``(num_cores + g) * 2**36 + permute(k)``, a disjoint address region
  per group so shared blocks are genuinely the same blocks across the
  group's cores.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Callable, Dict, Iterator, List, Tuple

import numpy as np

from repro.util.rng import derive_seed
from repro.workloads.registry import WorkloadSource, register_family
from repro.workloads.tenants import (
    DEFAULT_CHUNK,
    TENANT_ADDRESS_STRIDE,
    _coprime_multiplier,
    _power_law_keys,
)

__all__ = [
    "SharedSpec",
    "SharedWorkload",
    "SHARED_PRESETS",
    "get_shared_workload",
    "shared_presets",
]

#: Bump when trace generation changes (part of the workload identity).
SHARED_FAMILY_VERSION = 1


@dataclass(frozen=True)
class SharedSpec:
    """One homogeneous shared-data workload.

    Attributes:
        name: workload label.
        num_cores: number of cores issuing requests.
        keys: per-core private pool size, in distinct keys (= blocks).
        skew: Zipf exponent of the private pools.
        sharing: fraction of each core's accesses aimed at its group's
            shared pool.
        degree: cores per sharing group (adjacent cores share a pool;
            ``degree == num_cores`` means one global pool).
        shared_keys: per-group shared pool size.
        shared_skew: Zipf exponent of the shared pools.
    """

    name: str
    num_cores: int
    keys: int = 1 << 17
    skew: float = 0.9
    sharing: float = 0.3
    degree: int = 4
    shared_keys: int = 1 << 15
    shared_skew: float = 0.8

    def __post_init__(self) -> None:
        if self.num_cores < 1:
            raise ValueError(f"num_cores must be >= 1, got {self.num_cores}")
        if not 1 <= self.degree <= self.num_cores:
            raise ValueError(
                f"degree must be in [1, {self.num_cores}], got {self.degree}"
            )
        if not 0.0 <= self.sharing <= 1.0:
            raise ValueError(f"sharing must be in [0, 1], got {self.sharing}")
        if self.keys < 1 or self.shared_keys < 1:
            raise ValueError("keys and shared_keys must be >= 1")
        if self.skew < 0 or self.shared_skew < 0:
            raise ValueError("skew exponents must be >= 0")

    @property
    def num_groups(self) -> int:
        return (self.num_cores + self.degree - 1) // self.degree


class _CoreStream:
    """One core's draw state, consumed strictly in its request order."""

    def __init__(self, spec: SharedSpec, seed: int) -> None:
        self.spec = spec
        self.rng = np.random.Generator(np.random.PCG64(seed))
        self.private_mult = _coprime_multiplier(spec.keys)
        self.shared_mult = _coprime_multiplier(spec.shared_keys)

    def draw(self, count: int) -> Tuple[np.ndarray, np.ndarray]:
        """The core's next ``count`` requests as ``(is_shared, rank)``.

        The per-request ``(select, key)`` uniform pair is drawn as one
        sequential block of ``2 * count`` values, so splitting a run of
        requests across chunks consumes the identical PCG64 prefix.
        """
        spec = self.spec
        u = self.rng.random(2 * count).reshape(count, 2)
        shared = u[:, 0] < spec.sharing
        ranks = np.empty(count, dtype=np.int64)
        if shared.any():
            ranks[shared] = (
                _power_law_keys(u[shared, 1], spec.shared_keys, spec.shared_skew)
                * self.shared_mult
            ) % spec.shared_keys
        private = ~shared
        if private.any():
            ranks[private] = (
                _power_law_keys(u[private, 1], spec.keys, spec.skew)
                * self.private_mult
            ) % spec.keys
        return shared, ranks


class SharedWorkload(WorkloadSource):
    """A shared-data workload: N cores, private pools plus group pools."""

    kind = "shared"

    def __init__(self, spec: SharedSpec) -> None:
        self.spec = spec

    @property
    def label(self) -> str:
        return f"shared:{self.spec.name}"

    @property
    def num_cores(self) -> int:
        return self.spec.num_cores

    @property
    def core_names(self) -> List[str]:
        return [f"core{i}" for i in range(self.spec.num_cores)]

    def identity(self) -> dict:
        return {
            "kind": self.kind,
            "version": SHARED_FAMILY_VERSION,
            "spec": asdict(self.spec),
        }

    def __repr__(self) -> str:
        return (
            f"SharedWorkload({self.spec.name!r}, {self.spec.num_cores} cores, "
            f"degree {self.spec.degree}, sharing {self.spec.sharing})"
        )

    # -- trace generation ----------------------------------------------------

    def solo_requests(self, index: int, total_requests: int) -> int:
        """Per-core request budget (cores are homogeneous: equal shares)."""
        return max(1, round(total_requests / self.spec.num_cores))

    def group_of(self, core: int) -> int:
        """The sharing group a core belongs to."""
        return core // self.spec.degree

    def _stream(self, core: int, seed: int) -> _CoreStream:
        return _CoreStream(
            self.spec, derive_seed(seed, "shared", self.spec.name, str(core))
        )

    def _addrs(self, cores: np.ndarray, shared: np.ndarray, ranks: np.ndarray):
        """Map ``(core, is_shared, rank)`` to block addresses."""
        spec = self.spec
        groups = cores // spec.degree
        region = np.where(shared, spec.num_cores + groups, cores)
        return region * TENANT_ADDRESS_STRIDE + ranks

    def chunks(
        self, total_requests: int, seed: int, chunk_size: int = DEFAULT_CHUNK
    ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield the interleaved shared trace as ``(cores, addrs)`` chunks."""
        interleave = np.random.Generator(
            np.random.PCG64(derive_seed(seed, "shared", self.spec.name, "interleave"))
        )
        streams = [self._stream(c, seed) for c in range(self.spec.num_cores)]
        produced = 0
        while produced < total_requests:
            n = min(chunk_size, total_requests - produced)
            cores = interleave.integers(0, self.spec.num_cores, size=n).astype(
                np.int64
            )
            shared = np.empty(n, dtype=bool)
            ranks = np.empty(n, dtype=np.int64)
            for core, stream in enumerate(streams):
                mask = cores == core
                count = int(mask.sum())
                if count:
                    shared[mask], ranks[mask] = stream.draw(count)
            yield cores, self._addrs(cores, shared, ranks)
            produced += n

    def core_chunks(
        self,
        index: int,
        total_requests: int,
        seed: int,
        chunk_size: int = DEFAULT_CHUNK,
    ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """One core's isolated stream (cores all 0) for stand-alone runs.

        Uses the same per-core seed label as :meth:`chunks`, so the solo
        draw sequence is a prefix-equal replay of the core's shared-run
        draws. Private keys map below ``keys``; shared keys map to a
        disjoint region above them (the solo run owns the whole cache,
        so no per-owner stride is applied).
        """
        stream = self._stream(index, seed)
        produced = 0
        while produced < total_requests:
            n = min(chunk_size, total_requests - produced)
            shared, ranks = stream.draw(n)
            addrs = np.where(shared, self.spec.keys + ranks, ranks)
            yield np.zeros(n, dtype=np.int64), addrs
            produced += n


# -- named presets -----------------------------------------------------------

#: Named workloads reachable as ``"shared:<name>"`` everywhere a mix is
#: accepted (run_workload, RunSpec, campaigns, the CLI).
SHARED_PRESETS: Dict[str, Callable[[], SharedWorkload]] = {
    "smoke4": lambda: SharedWorkload(
        SharedSpec("smoke4", num_cores=4, keys=20_000, shared_keys=10_000, degree=2)
    ),
    "scale16": lambda: SharedWorkload(
        SharedSpec("scale16", num_cores=16, keys=60_000, shared_keys=30_000, degree=4)
    ),
    "scale32": lambda: SharedWorkload(
        SharedSpec("scale32", num_cores=32, keys=60_000, shared_keys=30_000, degree=4)
    ),
    "scale64": lambda: SharedWorkload(
        SharedSpec("scale64", num_cores=64, keys=60_000, shared_keys=30_000, degree=8)
    ),
}


def shared_presets() -> List[str]:
    """Registered shared-data preset names, sorted."""
    return sorted(SHARED_PRESETS)


def get_shared_workload(name: str) -> SharedWorkload:
    """Build a preset shared-data workload by name.

    Raises:
        KeyError: listing the known presets.
    """
    try:
        factory = SHARED_PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown shared workload {name!r}; known: {shared_presets()}"
        ) from None
    return factory()


register_family("shared", get_shared_workload)
