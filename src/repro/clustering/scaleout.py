"""The scale-out replay driver: cluster-granular PriSM at 16-64 cores.

:func:`run_shared_workload` is the shared-data-family counterpart of
:func:`repro.tenancy.run.run_tenant_workload` — same signature shape,
same :class:`~repro.experiments.runner.WorkloadResult` out — plus the
``clusters`` knob that engages :mod:`repro.clustering`:

- with ``clusters=None`` every core is its own accounting owner and the
  run is the familiar per-core PriSM;
- with ``clusters=N`` the driver profiles a short prefix of the trace,
  groups cores by hit-curve similarity into at most ``N`` clusters, and
  builds the scheme and cache at cluster width with the ``core_map``
  installed — the engine translates core ids at the access boundary, so
  ``E_i``/``T_i``, quantization and the fallback paths all run per
  cluster, unchanged.

Accounting vs reporting: the cache's counters (occupancy, hits, misses,
the shadow monitor) are *accounting*-indexed — K clusters wide — because
that is what the scheme manages. Per-core metrics (IPC, Jain fairness,
weighted speedup) are recovered in the driver from the replay outputs:
each chunk's hit mask is binned by the original core ids before
translation, so per-core hit/miss totals are exact, not estimates.

``check=True`` forces the classic engine (the invariant checker walks
its object model), turns on sharer-bitmask tracking, and audits the new
``sharer-consistency`` and ``cluster-conservation`` invariants along
with the original catalogue.

The ``scaleout`` registry experiment sweeps workloads x schemes x
{per-core, clustered} and reports throughput and Jain-fairness panels;
runs fan out through :func:`~repro.experiments.parallel.run_specs`, so
``--jobs``, ``--store``, campaigns and the herd all apply.
"""

from __future__ import annotations

import time
import warnings
from typing import Dict, Optional, Sequence, Union

import numpy as np

from repro.cache.backends import build_cache
from repro.cache.encode import encode_accesses
from repro.clustering import derive_core_map
from repro.cpu.system import CoreResult
from repro.experiments.configs import MachineConfig
from repro.experiments.runner import (
    DEFAULT_STANDALONE_CACHE,
    StandaloneIPCCache,
    WorkloadResult,
    _scheme_diagnostics,
)
from repro.experiments.schemes import build_scheme
from repro.metrics import antt, fairness, ipc_throughput, weighted_speedup
from repro.metrics.tenancy import jain_fairness
from repro.telemetry import TelemetryRecorder
from repro.tenancy.perf import TenantPerfProvider
from repro.tenancy.run import _identity_digest
from repro.util.rng import derive_seed
from repro.workloads.registry import resolve_workload

__all__ = ["run_shared_workload", "shared_standalone", "run", "format_result"]


def _cost(hits: int, misses: int, provider: TenantPerfProvider) -> float:
    return hits * provider.hit_cost + misses * provider.miss_cost


def shared_standalone(
    source,
    config: MachineConfig,
    scheme: str = "lru",
    total_requests: Optional[int] = None,
    seed: int = 0,
    cache: Optional[StandaloneIPCCache] = None,
    backend: str = "classic",
):
    """Per-core solo baselines on the full cache (memoised).

    Each core replays its equal share of the shared request budget alone
    under the scheme's baseline policy. Returns ``(ipcs, hit_rates)`` —
    service-cost IPC analogues and solo hit rates, memoised like the
    tenant baselines.
    """
    source = resolve_workload(source)
    total = total_requests or config.instructions
    if cache is None:
        cache = DEFAULT_STANDALONE_CACHE
    digest = _identity_digest(source)
    ipcs, hit_rates = [], []
    for index in range(source.num_cores):
        _, policy = build_scheme(scheme, 1, [1.0])
        requests = source.solo_requests(index, total)
        key = (
            f"shared:{digest}:core{index}",
            config.geometry,
            type(policy).__name__,
            config.num_controllers,
            requests,
            config.workload_scale,
            seed,
        )
        ipc = cache.get(key + ("ipc",))
        rate = cache.get(key + ("hit_rate",))
        if ipc is None or rate is None:
            solo_cache, _ = build_cache(
                config.geometry, 1, policy=policy, scheme=None, backend=backend
            )
            provider = TenantPerfProvider(solo_cache)
            for cores, addrs in source.core_chunks(index, requests, seed):
                solo_cache.access_many(encode_accesses(cores, addrs, config.geometry))
            hits = solo_cache.stats.hits[0]
            misses = solo_cache.stats.misses[0]
            served = hits + misses
            cycles = _cost(hits, misses, provider)
            ipc = served / cycles if cycles else 0.0
            rate = hits / served if served else 0.0
            cache.store(key + ("ipc",), ipc)
            cache.store(key + ("hit_rate",), rate)
        ipcs.append(ipc)
        hit_rates.append(rate)
    return ipcs, hit_rates


def _cluster_standalone(sp_ipcs: Sequence[float], core_map: Sequence[int]) -> list:
    """Per-cluster stand-alone IPCs: the mean of the member cores'.

    Cores within a cluster were grouped for having *similar* curves, so
    the mean is the natural cluster-level normaliser for PriSM-Q's
    target computation.
    """
    num_clusters = max(core_map) + 1
    sums = [0.0] * num_clusters
    counts = [0] * num_clusters
    for core, group in enumerate(core_map):
        sums[group] += sp_ipcs[core]
        counts[group] += 1
    return [s / c for s, c in zip(sums, counts)]


def run_shared_workload(
    source,
    config: MachineConfig,
    scheme: str = "lru",
    seed: int = 0,
    instructions: Optional[int] = None,
    scheme_kwargs: Optional[dict] = None,
    telemetry: Union[bool, TelemetryRecorder] = False,
    standalone_cache: Optional[StandaloneIPCCache] = None,
    check: bool = False,
    backend: str = "classic",
    clusters: Optional[int] = None,
    track_sharers: bool = False,
) -> WorkloadResult:
    """Run one shared-data workload under one scheme; report the metrics.

    Args:
        source: a :class:`~repro.workloads.shared.SharedWorkload` or a
            ``"shared:<preset>"`` reference.
        config: the machine; ``config.num_cores`` must equal the
            workload's core count.
        clusters: run PriSM at cluster granularity — profile a trace
            prefix, group cores into at most this many clusters by
            hit-curve similarity, and manage clusters instead of cores
            (``None`` = per-core management).
        track_sharers: maintain per-block sharer bitmasks (implied by
            ``check=True``, which audits the ``sharer-consistency``
            invariant).
        scheme/seed/instructions/scheme_kwargs/telemetry/standalone_cache/
            check/backend: as in
            :func:`~repro.experiments.runner.run_workload`.
    """
    source = resolve_workload(source)
    if source.num_cores != config.num_cores:
        raise ValueError(
            f"mix {source.label!r} has {source.num_cores} cores but the "
            f"machine has {config.num_cores} cores"
        )
    num_cores = source.num_cores
    total_requests = instructions or config.instructions
    sp_ipcs, solo_hit_rates = shared_standalone(
        source,
        config,
        scheme=scheme,
        total_requests=total_requests,
        seed=seed,
        cache=standalone_cache,
        backend=backend,
    )

    core_map = None
    if clusters is not None:
        core_map = derive_core_map(source, config.geometry, clusters, seed)
        if max(core_map) + 1 == num_cores:
            core_map = None  # clustering degenerated to per-core management
    acct_cores = max(core_map) + 1 if core_map is not None else num_cores
    acct_standalone = (
        _cluster_standalone(sp_ipcs, core_map) if core_map is not None else sp_ipcs
    )

    scheme_obj, policy = build_scheme(
        scheme, acct_cores, acct_standalone, **(scheme_kwargs or {})
    )
    if check and backend != "classic":
        warnings.warn(
            "check=True audits the classic engine; ignoring backend="
            f"{backend!r} for this run",
            RuntimeWarning,
            stacklevel=2,
        )
        backend = "classic"
    track = track_sharers or check
    cache, _ = build_cache(
        config.geometry,
        acct_cores,
        policy=policy,
        scheme=scheme_obj,
        backend=backend,
        core_map=core_map,
        track_sharers=track,
    )
    checker = None
    if check:
        from repro.check.invariants import attach_checker

        checker = attach_checker(cache)

    provider = TenantPerfProvider(cache)
    if scheme_obj is not None and hasattr(scheme_obj, "perf"):
        scheme_obj.perf = provider
    labels = (
        [f"cluster{g}" for g in range(acct_cores)]
        if core_map is not None
        else source.core_names
    )
    recorder = (
        telemetry if isinstance(telemetry, TelemetryRecorder) else TelemetryRecorder()
    )
    recorder.bind_cache(cache, benchmarks=labels, perf=provider)

    # Per-REAL-core tallies, binned from the replay outputs before the
    # engine's core->cluster translation (the cache's own stats are
    # accounting-indexed).
    core_hits = np.zeros(num_cores, dtype=np.int64)
    core_misses = np.zeros(num_cores, dtype=np.int64)
    shared_seed = derive_seed(seed, "shared", source.label, scheme)
    window_intervals = scheme_obj is None  # unmanaged runs never fire intervals
    start = time.perf_counter()
    for cores, addrs in source.chunks(total_requests, shared_seed):
        trace = encode_accesses(cores, addrs, config.geometry)
        out = cache.access_many(trace, collect=True)
        hit = np.asarray(out.hit, dtype=bool)
        core_hits += np.bincount(cores[hit], minlength=num_cores)
        core_misses += np.bincount(cores[~hit], minlength=num_cores)
        if window_intervals:
            recorder.record_interval(cache)
            cache.stats.reset_interval()
            cache.intervals_completed += 1
    run_telemetry = recorder.finalize(
        time.perf_counter() - start, accesses=total_requests
    )
    if checker is not None:
        checker.check_now()

    num_blocks = config.geometry.num_blocks
    cores_out = []
    mp_ipcs = []
    for index in range(num_cores):
        hits = int(core_hits[index])
        misses = int(core_misses[index])
        served = hits + misses
        cycles = _cost(hits, misses, provider)
        ipc = served / cycles if cycles else 0.0
        mp_ipcs.append(ipc)
        if core_map is not None:
            # Under clustering occupancy is owned per cluster; report an
            # even split across members. (The classic engine could scan
            # exact per-filler charges, but the vector engine does not
            # materialise fillers, and the fingerprint certifies results
            # as backend-invariant — so both report the split.)
            group = core_map[index]
            members = core_map.count(group)
            occupancy = cache.occupancy[group] / members
        else:
            occupancy = cache.occupancy[index]
        cores_out.append(
            CoreResult(
                name=f"core{index}",
                ipc=ipc,
                cpi=cycles / served if served else 0.0,
                llc_stall_cpi=(
                    misses * (provider.miss_cost - provider.hit_cost) / served
                    if served
                    else 0.0
                ),
                instructions=served,
                cycles=cycles,
                hits=hits,
                misses=misses,
                occupancy_at_finish=occupancy / num_blocks,
            )
        )

    return WorkloadResult(
        mix=source.label,
        scheme=scheme,
        benchmarks=source.core_names,
        cores=cores_out,
        standalone=sp_ipcs,
        antt=antt(sp_ipcs, mp_ipcs),
        fairness=fairness(sp_ipcs, mp_ipcs),
        throughput=ipc_throughput(mp_ipcs),
        weighted_speedup=weighted_speedup(sp_ipcs, mp_ipcs),
        intervals=cache.intervals_completed,
        telemetry=run_telemetry if telemetry else None,
        **_scheme_diagnostics(scheme_obj),
    )


# -- the registry experiment -------------------------------------------------

from repro.experiments.common import Progress, format_table  # noqa: E402
from repro.experiments.configs import machine  # noqa: E402
from repro.experiments.options import experiment_run  # noqa: E402
from repro.experiments.parallel import RunSpec, run_specs  # noqa: E402

#: The scheme panel the scale-out scenario compares by default.
DEFAULT_SCHEMES = ("lru", "prism-h", "prism-f")

#: The workload presets swept by default (16, 32 and 64 cores).
DEFAULT_WORKLOADS = ("scale16", "scale32", "scale64")


def _result_row(result: WorkloadResult, clusters: Optional[int]) -> Dict:
    slowdowns = [
        mp / sp if sp else 0.0 for mp, sp in zip(result.shared_ipcs(), result.standalone)
    ]
    total_hits = sum(c.hits for c in result.cores)
    total = sum(c.hits + c.misses for c in result.cores)
    return {
        "scheme": result.scheme,
        "clusters": clusters,
        "throughput": result.throughput,
        "weighted_speedup": result.weighted_speedup,
        "jain": jain_fairness(slowdowns),
        "hit_rate": total_hits / total if total else 0.0,
        "antt": result.antt,
        "intervals": result.intervals,
    }


@experiment_run
def run(
    instructions: Optional[int] = None,
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
    schemes: Sequence[str] = DEFAULT_SCHEMES,
    clusters: int = 4,
    scale_factor: int = 64,
    backend: str = "classic",
    seed: int = 0,
    progress: Progress = None,
) -> Dict:
    """The many-core scale-out panels: throughput and Jain fairness.

    Sweeps every workload preset under every scheme twice — per-core
    management and cluster-granular management (``clusters`` clusters) —
    and reports throughput, weighted speedup, Jain fairness over
    per-core slowdowns, and hit rate for each cell.

    Args:
        instructions: total shared request budget per run (``None`` =
            the machine default).
        workloads: shared-family preset names (or full ``"shared:..."``
            references).
        schemes: scheme registry names to compare.
        clusters: cluster-count cap for the clustered half of the panel.
        scale_factor/backend/seed: as everywhere else.
    """
    workloads = [w if ":" in w else f"shared:{w}" for w in workloads]
    schemes = list(schemes)
    panels = []
    for ref in workloads:
        source = resolve_workload(ref)
        config = machine(source.num_cores, scale_factor=scale_factor)
        specs = [
            RunSpec(
                mix=ref,
                scheme=scheme,
                seed=seed,
                instructions=instructions,
                backend=backend,
                clusters=cluster_count,
            )
            for scheme in schemes
            for cluster_count in (None, clusters)
        ]
        if progress:
            progress(
                f"{ref}: {len(specs)} runs ({source.num_cores} cores, "
                f"schemes {', '.join(schemes)}, per-core vs {clusters} clusters)"
            )
        results = run_specs(specs, config, progress=progress)
        rows = [
            _result_row(result, spec.clusters)
            for spec, result in zip(specs, results)
        ]
        panels.append({"workload": ref, "cores": source.num_cores, "rows": rows})
    return {
        "id": "scaleout",
        "schemes": schemes,
        "clusters": clusters,
        "workloads": workloads,
        "panels": panels,
    }


def format_result(result: Dict) -> str:
    lines = [
        "Many-core scale-out: cluster-granular PriSM "
        f"(clustered runs cap at {result['clusters']} clusters)"
    ]
    for panel in result["panels"]:
        lines.append(f"\n{panel['workload']} ({panel['cores']} cores)")
        lines.append(format_table(
            ["scheme", "clusters", "throughput", "w-speedup", "jain",
             "hit-rate", "ANTT", "intervals"],
            [
                [
                    row["scheme"],
                    row["clusters"] if row["clusters"] is not None else "per-core",
                    row["throughput"],
                    row["weighted_speedup"],
                    row["jain"],
                    row["hit_rate"],
                    row["antt"],
                    row["intervals"],
                ]
                for row in panel["rows"]
            ],
            width=11,
        ))
    return "\n".join(lines)
