"""Cluster-granular PriSM: group cores by miss-curve similarity.

PriSM's bookkeeping — eviction probabilities, allocation targets,
occupancy counters, shadow tags — is all per accounting owner. Managing
64 cores individually both multiplies that state and starves the
allocator of signal: each core's interval miss count shrinks as the core
count grows, so ``E_i`` gets noisier exactly when there are more of
them. The scale-out regime keeps the machinery unchanged but runs it at
*cluster* granularity: cores with similar stand-alone hit curves share
one accounting owner, and the engine translates real core ids through a
``core_map`` at the access boundary (see
:class:`~repro.cache.cache.SharedCache`).

The pipeline:

1. :func:`profile_hit_curves` replays a short prefix of the workload
   through a stand-alone :class:`~repro.cache.shadow.ShadowTagMonitor`
   (no cache, no scheme) and returns each core's normalised hit-vs-ways
   curve — the same utility curve UCP consumes, here used as the
   similarity feature.
2. :func:`cluster_cores` runs deterministic k-medoids over those curves
   (L1 distance) and returns a dense ``core_map``.
3. The caller builds the scheme and cache at the cluster width and
   passes ``core_map`` down; everything else — quantization, bias
   correction, fallback paths, invariants — runs unchanged per cluster.

Determinism contract (property-tested in ``tests/clustering``): the
clustering is **value-based** — medoid seeding and every tie-break
compare curve values (lexicographically) before indices — so the induced
partition of cores is invariant under permutation of core order, is a
pure function of its inputs (no RNG), and degenerates to the identity
map when ``k`` >= the core count.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.util.rng import derive_seed

__all__ = [
    "cluster_cores",
    "derive_core_map",
    "kmedoids",
    "profile_hit_curves",
]

#: Default request budget of the profiling prefix.
DEFAULT_PROFILE_REQUESTS = 100_000

Curve = Tuple[float, ...]


def _distance(a: Curve, b: Curve) -> float:
    """L1 distance between two hit curves."""
    return sum(abs(x - y) for x, y in zip(a, b))


def kmedoids(
    points: Sequence[Curve], k: int, max_iter: int = 64
) -> Tuple[List[int], List[int]]:
    """Deterministic k-medoids over ``points``; returns ``(medoids, assignment)``.

    No RNG anywhere: the first medoid is the lexicographically smallest
    point, the rest are farthest-point seeds (max min-distance, ties
    broken by smaller point value then smaller index), assignment ties
    prefer the earlier medoid, and medoid updates minimise
    ``(total distance, point value, index)``. Because every tie-break
    consults point *values* before indices, the partition the assignment
    induces depends only on the multiset of points — permuting the input
    permutes the assignment identically.

    ``k >= len(points)`` degenerates to the identity (every point its
    own medoid).
    """
    n = len(points)
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    points = [tuple(p) for p in points]
    if k >= n:
        return list(range(n)), list(range(n))

    chosen = [min(range(n), key=lambda i: (points[i], i))]
    while len(chosen) < k:
        best_key = None
        best_index = -1
        for i in range(n):
            if i in chosen:
                continue
            d = min(_distance(points[i], points[m]) for m in chosen)
            key = (-d, points[i], i)
            if best_key is None or key < best_key:
                best_key = key
                best_index = i
        chosen.append(best_index)

    def assign(medoids: List[int]) -> List[int]:
        out = []
        for i in range(n):
            out.append(
                min(
                    range(len(medoids)),
                    key=lambda j: (_distance(points[i], points[medoids[j]]), j),
                )
            )
        return out

    medoids = chosen
    assignment = assign(medoids)
    for _ in range(max_iter):
        updated = []
        for j in range(k):
            members = [i for i in range(n) if assignment[i] == j]
            if not members:
                updated.append(medoids[j])
                continue
            updated.append(
                min(
                    members,
                    key=lambda i: (
                        sum(_distance(points[i], points[m]) for m in members),
                        points[i],
                        i,
                    ),
                )
            )
        if updated == medoids:
            break
        medoids = updated
        assignment = assign(medoids)
    return medoids, assignment


def cluster_cores(curves: Sequence[Curve], k: int) -> List[int]:
    """Cluster cores by hit-curve similarity into a dense ``core_map``.

    Returns one accounting-group id per core, relabelled by first
    appearance in core order so ids are dense in ``[0, K)`` with
    ``K <= k`` (empty clusters vanish).
    """
    _, assignment = kmedoids(curves, k)
    relabel: dict = {}
    return [relabel.setdefault(label, len(relabel)) for label in assignment]


def profile_hit_curves(
    source,
    geometry,
    seed: int,
    requests: Optional[int] = None,
    sample_shift: int = 2,
) -> List[Curve]:
    """Per-core normalised hit curves from a short shadow-only replay.

    Replays a ``requests``-long prefix of ``source``'s shared trace
    through a stand-alone shadow-tag monitor (no cache is built: the
    monitor alone emulates each core's private-cache behaviour on
    sampled sets). Core ``c``'s curve entry ``w`` is the fraction of its
    sampled accesses that would hit with ``w + 1`` ways — normalising by
    access count makes curves comparable between cores with different
    request rates.
    """
    from repro.cache.encode import encode_accesses
    from repro.cache.shadow import ShadowTagMonitor

    monitor = ShadowTagMonitor(
        source.num_cores, geometry.num_sets, geometry.assoc,
        sample_shift=sample_shift,
    )
    observe = monitor.observe
    total = requests or DEFAULT_PROFILE_REQUESTS
    for cores, addrs in source.chunks(total, seed):
        trace = encode_accesses(cores, addrs, geometry)
        cores_l = trace.cores.tolist()
        sets_l = trace.set_indices.tolist()
        tags_l = trace.tags.tolist()
        for i in range(len(cores_l)):
            observe(cores_l[i], sets_l[i], tags_l[i], False)
    curves = []
    for core in range(source.num_cores):
        accesses = monitor.sampled_accesses(core)
        prefix = 0
        curve = []
        for hits in monitor.position_hits[core]:
            prefix += hits
            curve.append(prefix / accesses if accesses else 0.0)
        curves.append(tuple(curve))
    return curves


def derive_core_map(
    source,
    geometry,
    clusters: int,
    seed: int,
    profile_requests: Optional[int] = None,
) -> List[int]:
    """Profile ``source`` and cluster its cores into ``clusters`` groups.

    The profiling prefix replays under its own derived seed (label
    ``"cluster-profile"``), so the clustering decision never consumes
    draws from — and is reproducible independently of — the measured
    run's streams.
    """
    if clusters < 1:
        raise ValueError(f"clusters must be >= 1, got {clusters}")
    if clusters >= source.num_cores:
        return list(range(source.num_cores))
    curves = profile_hit_curves(
        source,
        geometry,
        derive_seed(seed, "cluster-profile", source.label),
        requests=profile_requests,
    )
    return cluster_cores(curves, clusters)
