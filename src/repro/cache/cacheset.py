"""One cache set: lookup structure plus a recency ordering.

The recency list is the single source of truth that replacement policies
manipulate. Index 0 is the MRU position and index ``len-1`` the LRU
position; policies express insertion and promotion as list positions, which
keeps LRU, LIP/BIP (DIP) and PIPP's arbitrary insertion points uniform.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.cache.block import CacheBlock

__all__ = ["CacheSet"]


class CacheSet:
    """A set of ``assoc`` blocks with an MRU→LRU recency order.

    Attributes:
        index: this set's index within the cache.
        blocks: recency-ordered valid blocks (index 0 = MRU). Invalid blocks
            are kept aside in a free pool and are not part of the ordering.
    """

    __slots__ = ("index", "assoc", "blocks", "_by_tag", "_free")

    def __init__(self, index: int, assoc: int) -> None:
        self.index = index
        self.assoc = assoc
        self.blocks: List[CacheBlock] = []
        self._by_tag: Dict[int, CacheBlock] = {}
        self._free: List[CacheBlock] = [CacheBlock() for _ in range(assoc)]

    # -- lookup ---------------------------------------------------------

    def lookup(self, tag: int) -> Optional[CacheBlock]:
        """Return the valid block holding ``tag``, or ``None``."""
        return self._by_tag.get(tag)

    def __len__(self) -> int:
        return len(self.blocks)

    @property
    def full(self) -> bool:
        """True when every way holds a valid block."""
        return not self._free

    def __iter__(self) -> Iterator[CacheBlock]:
        return iter(self.blocks)

    # -- occupancy queries ------------------------------------------------

    def count_core(self, core: int) -> int:
        """Number of valid blocks owned by ``core`` in this set."""
        return sum(1 for b in self.blocks if b.core == core)

    def blocks_of(self, core: int) -> List[CacheBlock]:
        """Valid blocks owned by ``core``, in MRU→LRU order."""
        return [b for b in self.blocks if b.core == core]

    # -- mutation ---------------------------------------------------------

    def fill(self, tag: int, core: int, position: Optional[int] = None) -> CacheBlock:
        """Fill a free way with (``tag``, ``core``) and place it in the order.

        Args:
            tag: address tag; must not already be present.
            core: owning core id.
            position: recency position to insert at (0 = MRU). ``None``
                inserts at MRU; values past the end insert at LRU.

        Raises:
            RuntimeError: if the set is full (callers must evict first) or
                the tag is already present.
        """
        if tag in self._by_tag:
            raise RuntimeError(f"set {self.index}: tag {tag:#x} already present")
        if not self._free:
            raise RuntimeError(f"set {self.index}: fill on a full set")
        block = self._free.pop()
        block.fill(tag, core)
        if position is None:
            position = 0
        self.blocks.insert(min(position, len(self.blocks)), block)
        self._by_tag[tag] = block
        return block

    def evict(self, block: CacheBlock) -> None:
        """Remove ``block`` from the set and return its way to the free pool."""
        self.blocks.remove(block)
        del self._by_tag[block.tag]
        block.invalidate()
        self._free.append(block)

    def move_to(self, block: CacheBlock, position: int) -> None:
        """Move a resident block to recency ``position`` (0 = MRU)."""
        self.blocks.remove(block)
        self.blocks.insert(min(position, len(self.blocks)), block)

    def position_of(self, block: CacheBlock) -> int:
        """Current recency position of ``block`` (0 = MRU)."""
        return self.blocks.index(block)

    def lru_block(self) -> CacheBlock:
        """The block at the LRU position.

        Raises:
            RuntimeError: if the set is empty.
        """
        if not self.blocks:
            raise RuntimeError(f"set {self.index}: LRU of empty set")
        return self.blocks[-1]
