"""One cache set: lookup structure plus a recency ordering.

The recency order is the single source of truth that replacement policies
manipulate. It is kept as an **intrusive doubly-linked list** threaded
through the blocks themselves (``CacheBlock.prev``/``next``) between two
sentinel nodes, so the operations on the simulator's hot path are all
O(1):

- :meth:`lookup` — tag dict probe;
- :meth:`fill_mru` / :meth:`fill_lru` — splice at either end;
- :meth:`promote` / :meth:`promote_one` — hit promotion;
- :meth:`evict` — unlink anywhere;
- :meth:`lru_block` / :meth:`mru_block` — end peeks;
- :meth:`count_core` — incrementally maintained per-core counts.

Positional helpers (:meth:`fill` with an explicit ``position``,
:meth:`move_to`, :meth:`position_of`, the :attr:`blocks` list) are kept
for tests, diagnostics and inherently positional policies such as PIPP;
they walk the list from the nearer end and are **not** O(1). Policies
should express themselves through the position-free operations above.
MRU is position 0; LRU is position ``len - 1``.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterator, List, Optional

from repro.cache.block import CacheBlock

__all__ = ["CacheSet"]


class CacheSet:
    """A set of ``assoc`` blocks with an MRU→LRU recency order.

    Attributes:
        index: this set's index within the cache.
        assoc: number of ways.
    """

    __slots__ = (
        "index",
        "assoc",
        "_by_tag",
        "lookup_tag",
        "_free",
        "_head",
        "_tail",
        "_count",
        "_core_counts",
    )

    def __init__(self, index: int, assoc: int) -> None:
        self.index = index
        self.assoc = assoc
        self._by_tag: Dict[int, CacheBlock] = {}
        #: Pre-bound ``_by_tag.get`` — the dict object lives as long as the
        #: set, and the access loop probes it once per access.
        self.lookup_tag = self._by_tag.get
        self._free: List[CacheBlock] = [CacheBlock() for _ in range(assoc)]
        head = CacheBlock()  # sentinel: head.next is the MRU block
        tail = CacheBlock()  # sentinel: tail.prev is the LRU block
        head.next = tail
        tail.prev = head
        self._head = head
        self._tail = tail
        self._count = 0
        # defaultdict: the hot count updates are plain subscripts with no
        # .get fallback; at most num_cores keys ever materialise.
        self._core_counts: Dict[int, int] = defaultdict(int)

    # -- lookup ---------------------------------------------------------

    def lookup(self, tag: int) -> Optional[CacheBlock]:
        """Return the valid block holding ``tag``, or ``None``."""
        return self._by_tag.get(tag)

    def __len__(self) -> int:
        return self._count

    @property
    def full(self) -> bool:
        """True when every way holds a valid block."""
        return not self._free

    def __iter__(self) -> Iterator[CacheBlock]:
        """Valid blocks in MRU→LRU order."""
        node = self._head.next
        tail = self._tail
        while node is not tail:
            yield node
            node = node.next

    def iter_lru_to_mru(self) -> Iterator[CacheBlock]:
        """Valid blocks in LRU→MRU order (the natural eviction walk)."""
        node = self._tail.prev
        head = self._head
        while node is not head:
            yield node
            node = node.prev

    @property
    def blocks(self) -> List[CacheBlock]:
        """Recency-ordered valid blocks (index 0 = MRU), materialised.

        A fresh list on every read — convenient for tests and diagnostics,
        O(assoc) and therefore not for the access hot path.
        """
        return list(self)

    # -- occupancy queries ------------------------------------------------

    def count_core(self, core: int) -> int:
        """Number of valid blocks owned by ``core`` in this set (O(1))."""
        return self._core_counts.get(core, 0)

    def blocks_of(self, core: int) -> List[CacheBlock]:
        """Valid blocks owned by ``core``, in MRU→LRU order."""
        return [b for b in self if b.core == core]

    def first_of_core_lru(self, core: int) -> Optional[CacheBlock]:
        """``core``'s LRU-most block, or ``None`` when it owns none here.

        A direct linked-list walk from the LRU end — the common case of
        PriSM's victim-identification step, O(victim depth) with no
        generator or list overhead.
        """
        if not self._core_counts.get(core):
            return None
        node = self._tail.prev
        while node.core != core:
            node = node.prev
        return node

    # -- mutation ---------------------------------------------------------

    def _take_free(self, tag: int, core: int) -> CacheBlock:
        if tag in self._by_tag:
            raise RuntimeError(f"set {self.index}: tag {tag:#x} already present")
        if not self._free:
            raise RuntimeError(f"set {self.index}: fill on a full set")
        block = self._free.pop()
        block.fill(tag, core)
        self._by_tag[tag] = block
        self._count += 1
        self._core_counts[core] += 1
        return block

    def fill_mru(self, tag: int, core: int) -> CacheBlock:
        """Fill a free way at the MRU position (O(1))."""
        block = self._take_free(tag, core)
        head = self._head
        first = head.next
        block.prev = head
        block.next = first
        head.next = block
        first.prev = block
        return block

    def fill_lru(self, tag: int, core: int) -> CacheBlock:
        """Fill a free way at the LRU position (O(1))."""
        block = self._take_free(tag, core)
        tail = self._tail
        last = tail.prev
        block.prev = last
        block.next = tail
        last.next = block
        tail.prev = block
        return block

    def fill(self, tag: int, core: int, position: Optional[int] = None) -> CacheBlock:
        """Fill a free way with (``tag``, ``core``) and place it in the order.

        Args:
            tag: address tag; must not already be present.
            core: owning core id.
            position: recency position to insert at (0 = MRU). ``None``
                inserts at MRU; values past the end insert at LRU. Interior
                positions walk the list from the nearer end — prefer
                :meth:`fill_mru`/:meth:`fill_lru` on hot paths.

        Raises:
            RuntimeError: if the set is full (callers must evict first) or
                the tag is already present.
        """
        if position is None or position <= 0:
            return self.fill_mru(tag, core)
        if position >= self._count:
            return self.fill_lru(tag, core)
        anchor = self._node_at(position)  # before _take_free bumps the count
        block = self._take_free(tag, core)
        self._link_before(block, anchor)
        return block

    def replace_mru(self, victim: CacheBlock, tag: int, core: int) -> CacheBlock:
        """Evict ``victim`` and fill (``tag``, ``core``) at MRU, fused (O(1)).

        Reuses the victim's way in place: no free-pool round trip, one
        recency-list splice. The workhorse of the miss path on a full set.
        Callers must have established that ``tag`` is absent (every call
        site follows a failed lookup); the tag dict is updated unchecked.
        """
        by_tag = self._by_tag
        del by_tag[victim.tag]
        by_tag[tag] = victim
        old_core = victim.core
        if old_core != core:
            counts = self._core_counts
            counts[old_core] -= 1
            counts[core] += 1
        victim.tag = tag
        victim.core = core
        # timestamp/rrpv are deliberately NOT reset: every policy that reads
        # them re-initialises them in its on_fill hook.
        victim.managed = True
        head = self._head
        first = head.next
        if first is not victim:
            prev = victim.prev
            nxt = victim.next
            prev.next = nxt
            nxt.prev = prev
            victim.prev = head
            victim.next = first
            head.next = victim
            first.prev = victim
        return victim

    def replace_lru(self, victim: CacheBlock, tag: int, core: int) -> CacheBlock:
        """Evict ``victim`` and fill (``tag``, ``core``) at LRU, fused (O(1)).

        Same unchecked-tag precondition as :meth:`replace_mru`.
        """
        by_tag = self._by_tag
        del by_tag[victim.tag]
        by_tag[tag] = victim
        old_core = victim.core
        if old_core != core:
            counts = self._core_counts
            counts[old_core] -= 1
            counts[core] += 1
        victim.tag = tag
        victim.core = core
        # timestamp/rrpv are deliberately NOT reset: every policy that reads
        # them re-initialises them in its on_fill hook.
        victim.managed = True
        tail = self._tail
        last = tail.prev
        if last is not victim:
            prev = victim.prev
            nxt = victim.next
            prev.next = nxt
            nxt.prev = prev
            victim.prev = last
            victim.next = tail
            last.next = victim
            tail.prev = victim
        return victim

    def evict(self, block: CacheBlock) -> None:
        """Remove ``block`` from the set and return its way to the free pool (O(1))."""
        prev = block.prev
        nxt = block.next
        prev.next = nxt
        nxt.prev = prev
        block.prev = None
        block.next = None
        del self._by_tag[block.tag]
        self._count -= 1
        self._core_counts[block.core] -= 1
        block.invalidate()
        self._free.append(block)

    # -- recency manipulation ---------------------------------------------

    def promote(self, block: CacheBlock) -> None:
        """Move a resident block to the MRU position (O(1))."""
        head = self._head
        first = head.next
        if first is block:
            return
        prev = block.prev
        nxt = block.next
        prev.next = nxt
        nxt.prev = prev
        block.prev = head
        block.next = first
        head.next = block
        first.prev = block

    def hit_promote(self, block: CacheBlock, core: int = -1) -> None:
        """:meth:`promote`, shaped like the policies' ``on_hit`` hook.

        The ignored ``core`` argument lets recency policies expose this set
        operation *directly* as their ``on_hit`` (via ``staticmethod``),
        removing a delegation frame from every cache hit.
        """
        head = self._head
        first = head.next
        if first is block:
            return
        prev = block.prev
        nxt = block.next
        prev.next = nxt
        nxt.prev = prev
        block.prev = head
        block.next = first
        head.next = block
        first.prev = block

    def promote_one(self, block: CacheBlock) -> None:
        """Move a resident block one recency position toward MRU (O(1))."""
        prev = block.prev
        if prev is self._head:
            return
        before = prev.prev
        nxt = block.next
        before.next = block
        block.prev = before
        block.next = prev
        prev.prev = block
        prev.next = nxt
        nxt.prev = prev

    def demote(self, block: CacheBlock) -> None:
        """Move a resident block to the LRU position (O(1))."""
        tail = self._tail
        last = tail.prev
        if last is block:
            return
        prev = block.prev
        nxt = block.next
        prev.next = nxt
        nxt.prev = prev
        block.prev = last
        block.next = tail
        last.next = block
        tail.prev = block

    def move_to(self, block: CacheBlock, position: int) -> None:
        """Move a resident block to recency ``position`` (0 = MRU).

        Positional compatibility helper (walks the list); hot paths use
        :meth:`promote`/:meth:`promote_one`/:meth:`demote` instead.
        """
        prev = block.prev
        nxt = block.next
        prev.next = nxt
        nxt.prev = prev
        if position <= 0:
            anchor = self._head.next
        else:
            anchor = self._head.next
            tail = self._tail
            i = 0
            while anchor is not tail and i < position:
                anchor = anchor.next
                i += 1
        self._link_before(block, anchor)

    def position_of(self, block: CacheBlock) -> int:
        """Current recency position of ``block`` (0 = MRU; O(position))."""
        node = self._head.next
        tail = self._tail
        position = 0
        while node is not tail:
            if node is block:
                return position
            node = node.next
            position += 1
        raise ValueError(f"set {self.index}: block {block!r} is not resident")

    def lru_block(self) -> CacheBlock:
        """The block at the LRU position (O(1)).

        Raises:
            RuntimeError: if the set is empty.
        """
        block = self._tail.prev
        if block is self._head:
            raise RuntimeError(f"set {self.index}: LRU of empty set")
        return block

    def mru_block(self) -> CacheBlock:
        """The block at the MRU position (O(1)).

        Raises:
            RuntimeError: if the set is empty.
        """
        block = self._head.next
        if block is self._tail:
            raise RuntimeError(f"set {self.index}: MRU of empty set")
        return block

    # -- internals ---------------------------------------------------------

    def _node_at(self, position: int) -> CacheBlock:
        """Node at ``position`` (clamped to the tail sentinel), nearer-end walk."""
        count = self._count
        if position >= count:
            return self._tail
        if position <= count - 1 - position:
            node = self._head.next
            for _ in range(position):
                node = node.next
        else:
            node = self._tail.prev
            for _ in range(count - 1 - position):
                node = node.prev
        return node

    @staticmethod
    def _link_before(block: CacheBlock, anchor: CacheBlock) -> None:
        prev = anchor.prev
        prev.next = block
        block.prev = prev
        block.next = anchor
        anchor.prev = block

    # -- integrity (tests and assertions) ----------------------------------

    def check_integrity(self) -> None:
        """Verify the linked list, tag index and counters agree.

        Raises:
            AssertionError: on any inconsistency.
        """
        forward = list(self)
        backward = list(self.iter_lru_to_mru())
        assert forward == backward[::-1], f"set {self.index}: link order mismatch"
        assert len(forward) == self._count, f"set {self.index}: count mismatch"
        assert len(forward) + len(self._free) == self.assoc, (
            f"set {self.index}: ways leaked ({len(forward)} resident, "
            f"{len(self._free)} free, assoc {self.assoc})"
        )
        assert len(self._by_tag) == self._count, f"set {self.index}: tag index size"
        counts: Dict[int, int] = {}
        for block in forward:
            assert block.valid, f"set {self.index}: invalid block in order"
            assert self._by_tag.get(block.tag) is block, (
                f"set {self.index}: tag index disagrees for {block.tag:#x}"
            )
            counts[block.core] = counts.get(block.core, 0) + 1
        for core, count in self._core_counts.items():
            assert counts.get(core, 0) == count, (
                f"set {self.index}: core {core} count {count} != scan {counts.get(core, 0)}"
            )
        for block in self._free:
            assert not block.valid, f"set {self.index}: valid block in free pool"
