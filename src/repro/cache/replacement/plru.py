"""Tree pseudo-LRU — the classic hardware approximation of LRU.

True LRU needs ``log2(assoc!)`` bits per set; hardware L2/L3s instead keep
``assoc - 1`` tree bits and follow them to a victim (the policy Simu-style
multi-level models pair with private L1s). Included here as the hierarchy
baseline: it composes with PriSM's core-selection step like any other
policy — :meth:`eviction_order` enumerates ways pointer-first, so the
manager can take the first block of the sampled victim core.

Each internal tree node holds one bit naming the subtree the *next victim*
lives in; touching a way flips every node on its root path to point at the
sibling subtree. The per-set state lives in the policy (``CacheBlock`` has
closed slots), keyed by block identity: a set's blocks are a stable pool
of ``assoc`` objects, so each object is assigned a physical way index the
first time it is filled and keeps it for the life of the run.
"""

from __future__ import annotations

from typing import Dict, List

from repro.cache.replacement.base import ReplacementPolicy

__all__ = ["PLRUPolicy"]


class _SetState:
    """Tree bits + way bookkeeping for one cache set."""

    __slots__ = ("bits", "way_of", "blocks")

    def __init__(self, assoc: int) -> None:
        self.bits: List[int] = [0] * (assoc - 1)
        self.way_of: Dict[int, int] = {}       # id(block) -> way
        self.blocks: List[object] = [None] * assoc  # way -> block


class PLRUPolicy(ReplacementPolicy):
    """Tree-based pseudo-LRU over power-of-two associativities.

    Node ``i``'s children are ``2i + 1`` and ``2i + 2``; leaves
    ``assoc - 1 .. 2 * assoc - 2`` map to ways ``0 .. assoc - 1``. A bit
    value of ``b`` at a node means the next victim is in child ``b``.
    """

    name = "plru"
    recency_ordered = False

    def bind(self, cache) -> None:
        super().bind(cache)
        assoc = cache.geometry.assoc
        if assoc & (assoc - 1):
            raise ValueError(f"PLRU needs a power-of-two associativity, got {assoc}")
        self._assoc = assoc
        self._states: List[_SetState] = [
            _SetState(assoc) for _ in range(cache.geometry.num_sets)
        ]

    # -- tree mechanics -----------------------------------------------------

    def _touch(self, state: _SetState, way: int) -> None:
        """Point every node on ``way``'s root path away from it."""
        node = self._assoc - 1 + way
        bits = state.bits
        while node:
            parent = (node - 1) >> 1
            # Coming up from child b: the next victim is the sibling 1 - b.
            bits[parent] = 1 if node == 2 * parent + 1 else 0
            node = parent

    def _way_order(self, state: _SetState) -> List[int]:
        """All ways, victim-first (pointer subtree before its sibling)."""
        order: List[int] = []
        leaves = self._assoc - 1
        stack = [0]
        while stack:
            node = stack.pop()
            if node >= leaves:
                order.append(node - leaves)
                continue
            bit = state.bits[node]
            # LIFO stack: push the non-pointer child first so the pointer
            # subtree is fully enumerated ahead of its sibling.
            stack.append(2 * node + 2 - bit)
            stack.append(2 * node + 1 + bit)
        return order

    # -- policy hooks -------------------------------------------------------

    def on_hit(self, cset, block, core: int) -> None:
        state = self._states[cset.index]
        self._touch(state, state.way_of[id(block)])
        cset.promote(block)  # keep the recency list sane for diagnostics

    def on_fill(self, cset, block, core: int) -> None:
        state = self._states[cset.index]
        way = state.way_of.get(id(block))
        if way is None:
            way = len(state.way_of)
            state.way_of[id(block)] = way
            state.blocks[way] = block
        self._touch(state, way)

    def eviction_order(self, cset) -> List:
        state = self._states[cset.index]
        blocks = state.blocks
        return [
            blocks[way]
            for way in self._way_order(state)
            if blocks[way] is not None and blocks[way].valid
        ]
