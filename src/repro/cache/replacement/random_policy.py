"""Random replacement — useful as a stress baseline and in tests."""

from __future__ import annotations

from typing import List

from repro.cache.cacheset import CacheSet
from repro.cache.replacement.base import ReplacementPolicy
from repro.util.rng import make_rng

__all__ = ["RandomPolicy"]


class RandomPolicy(ReplacementPolicy):
    """Uniform-random victim choice; insertion at MRU, no promotion state."""

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        self._rng = make_rng(seed, "random-replacement")

    insert_fill = staticmethod(CacheSet.fill_mru)
    replace_fill = staticmethod(CacheSet.replace_mru)

    def on_hit(self, cset, block, core: int) -> None:
        # Random replacement keeps no recency state; leave the order alone.
        pass

    def eviction_order(self, cset) -> List:
        order = list(cset)
        self._rng.shuffle(order)
        return order
