"""Replacement-policy interface.

A policy answers three questions about a set:

1. where does a newly filled block go in the recency order
   (:meth:`insertion_position`),
2. what happens to a block on a hit (:meth:`on_hit`),
3. in what order would the policy prefer to evict the resident blocks
   (:meth:`eviction_order`).

Question 3 is the key to PriSM's policy-agnosticism: the probabilistic
manager asks for the preference order and takes the first block owned by
the sampled victim core, so any policy that can rank blocks works unchanged
underneath PriSM (Section 3.1 of the paper).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, List

if TYPE_CHECKING:  # pragma: no cover
    from repro.cache.block import CacheBlock
    from repro.cache.cache import SharedCache
    from repro.cache.cacheset import CacheSet

__all__ = ["ReplacementPolicy"]


class ReplacementPolicy(ABC):
    """Base class for baseline replacement policies."""

    name = "base"

    def bind(self, cache: "SharedCache") -> None:
        """Attach the policy to its cache.

        Called once by :class:`~repro.cache.cache.SharedCache`; policies that
        need global state (set dueling, timestamp counters) size it here.
        """
        self.cache = cache

    def notify_access(self, cset: "CacheSet") -> None:
        """Called on every access, hit or miss, before the lookup result is used."""

    def record_miss(self, cset: "CacheSet", core: int) -> None:
        """Called on every miss (set-dueling policies update selectors here)."""

    @abstractmethod
    def insertion_position(self, cset: "CacheSet", core: int) -> int:
        """Recency position (0 = MRU) at which a fill by ``core`` lands."""

    def on_hit(self, cset: "CacheSet", block: "CacheBlock", core: int) -> None:
        """Promotion behaviour on a hit; default is move-to-MRU."""
        cset.move_to(block, 0)

    def on_fill(self, cset: "CacheSet", block: "CacheBlock", core: int) -> None:
        """Hook after a fill was placed (policies stamp metadata here)."""

    @abstractmethod
    def eviction_order(self, cset: "CacheSet") -> List["CacheBlock"]:
        """Resident blocks ordered best-victim-first."""

    def victim(self, cset: "CacheSet") -> "CacheBlock":
        """The policy's preferred victim in ``cset``.

        Raises:
            RuntimeError: if the set holds no valid blocks.
        """
        order = self.eviction_order(cset)
        if not order:
            raise RuntimeError(f"set {cset.index}: victim requested from empty set")
        return order[0]
