"""Replacement-policy interface.

A policy answers three questions about a set:

1. where does a newly filled block land in the recency order
   (:meth:`insert_fill` — the position-free fast path; legacy policies may
   instead express it as a recency index via :meth:`insertion_position`),
2. what happens to a block on a hit (:meth:`on_hit`),
3. in what order would the policy prefer to evict the resident blocks
   (:meth:`eviction_candidates`, a lazy best-victim-first iterable;
   :meth:`eviction_order` is its materialised form).

Question 3 is the key to PriSM's policy-agnosticism: the probabilistic
manager asks for the preference order and takes the first block owned by
the sampled victim core, so any policy that can rank blocks works unchanged
underneath PriSM (Section 3.1 of the paper). Keeping the order *lazy* is
the key to speed: recency-list policies never materialise it, so the common
"victim is near the LRU end" case costs O(1) instead of O(assoc).

Hot-path no-ops (``notify_access``, ``record_miss``, ``on_fill``) are
tagged with ``_hot_noop`` so :class:`~repro.cache.cache.SharedCache` can
skip the call entirely for policies that do not override them.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Iterable, List

if TYPE_CHECKING:  # pragma: no cover
    from repro.cache.block import CacheBlock
    from repro.cache.cache import SharedCache
    from repro.cache.cacheset import CacheSet

__all__ = ["ReplacementPolicy"]


class ReplacementPolicy(ABC):
    """Base class for baseline replacement policies."""

    name = "base"
    #: True when :meth:`eviction_candidates` is exactly the set's LRU→MRU
    #: recency walk. Lets PriSM's manager replace the candidate scan with a
    #: direct linked-list walk (:meth:`CacheSet.first_of_core_lru`).
    recency_ordered = False

    def bind(self, cache: "SharedCache") -> None:
        """Attach the policy to its cache.

        Called once by :class:`~repro.cache.cache.SharedCache`; policies that
        need global state (set dueling, timestamp counters) size it here.
        """
        self.cache = cache

    def notify_access(self, cset: "CacheSet") -> None:
        """Called on every access, hit or miss, before the lookup result is used."""

    notify_access._hot_noop = True

    def record_miss(self, cset: "CacheSet", core: int) -> None:
        """Called on every miss (set-dueling policies update selectors here)."""

    record_miss._hot_noop = True

    def insertion_position(self, cset: "CacheSet", core: int) -> int:
        """Recency position (0 = MRU) at which a fill by ``core`` lands.

        Legacy/inspection API: the cache itself calls :meth:`insert_fill`,
        whose default routes through this method, so policies defining only
        ``insertion_position`` keep working.
        """
        return 0

    def insert_fill(self, cset: "CacheSet", tag: int, core: int) -> "CacheBlock":
        """Fill (``tag``, ``core``) into ``cset`` at the policy's position.

        Fast policies override this with a direct
        :meth:`~repro.cache.cacheset.CacheSet.fill_mru` /
        :meth:`~repro.cache.cacheset.CacheSet.fill_lru` call.
        """
        position = self.insertion_position(cset, core)
        if position <= 0:
            return cset.fill_mru(tag, core)
        return cset.fill(tag, core, position)

    def replace_fill(
        self, cset: "CacheSet", victim: "CacheBlock", tag: int, core: int
    ) -> "CacheBlock":
        """Evict ``victim`` and fill (``tag``, ``core``) in one step.

        Fast policies override this with the fused
        :meth:`~repro.cache.cacheset.CacheSet.replace_mru` /
        :meth:`~repro.cache.cacheset.CacheSet.replace_lru`, which reuse the
        victim's way without a free-pool round trip.
        """
        cset.evict(victim)
        return self.insert_fill(cset, tag, core)

    def on_hit(self, cset: "CacheSet", block: "CacheBlock", core: int) -> None:
        """Promotion behaviour on a hit; default is move-to-MRU."""
        cset.promote(block)

    def on_fill(self, cset: "CacheSet", block: "CacheBlock", core: int) -> None:
        """Hook after a fill was placed (policies stamp metadata here)."""

    on_fill._hot_noop = True

    def eviction_candidates(self, cset: "CacheSet") -> Iterable["CacheBlock"]:
        """Resident blocks, best victim first, as a lazy iterable.

        The default defers to :meth:`eviction_order` so legacy policies
        that only materialise a list keep working; recency-list policies
        override this with :meth:`CacheSet.iter_lru_to_mru`.
        """
        return self.eviction_order(cset)

    @abstractmethod
    def eviction_order(self, cset: "CacheSet") -> List["CacheBlock"]:
        """Resident blocks ordered best-victim-first (materialised)."""

    def victim(self, cset: "CacheSet") -> "CacheBlock":
        """The policy's preferred victim in ``cset``.

        Raises:
            RuntimeError: if the set holds no valid blocks.
        """
        for block in self.eviction_candidates(cset):
            return block
        raise RuntimeError(f"set {cset.index}: victim requested from empty set")
