"""SRRIP / BRRIP / DRRIP — re-reference interval prediction (Jaleel et al. [8]).

Included as extensions beyond the paper's LRU/timestamp-LRU/DIP set to
demonstrate (and test) that PriSM's core-selection step composes with a
non-recency-list policy family. DRRIP set-duels SRRIP against BRRIP the
same way DIP duels LRU against BIP.
"""

from __future__ import annotations

from typing import List

from repro.cache.cacheset import CacheSet
from repro.cache.replacement.base import ReplacementPolicy
from repro.util.rng import make_rng

__all__ = ["SRRIPPolicy", "BRRIPPolicy", "DRRIPPolicy"]


class SRRIPPolicy(ReplacementPolicy):
    """SRRIP with ``m``-bit re-reference prediction values (RRPV).

    Fills get RRPV ``2^m - 2`` (long re-reference), hits reset RRPV to 0
    (hit-priority variant), and the victim is the first block with maximal
    RRPV; if none exists all RRPVs age until one saturates.
    """

    name = "srrip"

    def __init__(self, m: int = 2) -> None:
        if m < 1:
            raise ValueError(f"RRPV width must be >= 1, got {m}")
        self.max_rrpv = (1 << m) - 1

    insert_fill = staticmethod(CacheSet.fill_mru)
    replace_fill = staticmethod(CacheSet.replace_mru)

    def on_fill(self, cset, block, core: int) -> None:
        block.rrpv = self.max_rrpv - 1

    def on_hit(self, cset, block, core: int) -> None:
        block.rrpv = 0
        cset.promote(block)

    def eviction_order(self, cset) -> List:
        # LRU→MRU walk, aged in place until one block saturates (as the
        # hardware's aging loop would), then ranked highest-RRPV first with
        # LRU-most first among ties (stable sort over the LRU-first walk).
        blocks = list(cset.iter_lru_to_mru())
        if not blocks:
            return []
        oldest = max(b.rrpv for b in blocks)
        if oldest < self.max_rrpv:
            delta = self.max_rrpv - oldest
            for b in blocks:
                b.rrpv += delta
        blocks.sort(key=lambda b: b.rrpv, reverse=True)
        return blocks


class BRRIPPolicy(SRRIPPolicy):
    """Bimodal RRIP: insert at distant RRPV, long-RRPV with prob ``epsilon``.

    The RRIP counterpart of BIP — it protects against thrashing by letting
    only an ``epsilon`` trickle of fills start anywhere near re-referencable.
    """

    name = "brrip"

    def __init__(self, m: int = 2, epsilon: float = 1.0 / 32.0, seed: int = 0) -> None:
        super().__init__(m)
        if not 0.0 < epsilon <= 1.0:
            raise ValueError(f"epsilon must be in (0, 1], got {epsilon}")
        self.epsilon = epsilon
        self._rng = make_rng(seed, "brrip")

    def on_fill(self, cset, block, core: int) -> None:
        if self._rng.random() < self.epsilon:
            block.rrpv = self.max_rrpv - 1  # long re-reference (SRRIP insert)
        else:
            block.rrpv = self.max_rrpv      # distant: first in line to evict


class DRRIPPolicy(SRRIPPolicy):
    """Dynamic RRIP: set-duel SRRIP vs BRRIP with a PSEL counter."""

    name = "drrip"

    def __init__(
        self,
        m: int = 2,
        epsilon: float = 1.0 / 32.0,
        leader_sets: int = 4,
        psel_bits: int = 10,
        seed: int = 0,
    ) -> None:
        super().__init__(m)
        if leader_sets < 1:
            raise ValueError(f"leader_sets must be >= 1, got {leader_sets}")
        self.epsilon = epsilon
        self.leader_sets = leader_sets
        self.psel_max = (1 << psel_bits) - 1
        self.psel = self.psel_max // 2
        self._rng = make_rng(seed, "drrip")
        self._role = {}

    def bind(self, cache) -> None:
        super().bind(cache)
        num_sets = cache.geometry.num_sets
        leaders = min(self.leader_sets, max(1, num_sets // 2))
        stride = max(1, num_sets // (2 * leaders))
        self._role = {}
        for i in range(leaders):
            self._role[(2 * i) * stride % num_sets] = "srrip"
            self._role[(2 * i + 1) * stride % num_sets] = "brrip"

    def role_of(self, set_index: int) -> str:
        return self._role.get(set_index, "follow")

    def _uses_brrip(self, set_index: int) -> bool:
        role = self.role_of(set_index)
        if role == "srrip":
            return False
        if role == "brrip":
            return True
        return self.psel > self.psel_max // 2

    def record_miss(self, cset, core: int) -> None:
        role = self.role_of(cset.index)
        if role == "srrip" and self.psel < self.psel_max:
            self.psel += 1
        elif role == "brrip" and self.psel > 0:
            self.psel -= 1

    def on_fill(self, cset, block, core: int) -> None:
        if self._uses_brrip(cset.index):
            if self._rng.random() < self.epsilon:
                block.rrpv = self.max_rrpv - 1
            else:
                block.rrpv = self.max_rrpv
        else:
            block.rrpv = self.max_rrpv - 1
