"""Baseline replacement policies.

PriSM layers its core-selection step on top of *any* of these: the policy
defines insertion position, promotion on hit, and an eviction-preference
order; schemes pick victims from that order (possibly restricted to one
core's blocks, which is exactly PriSM's victim-identification step).
"""

from repro.cache.replacement.base import ReplacementPolicy
from repro.cache.replacement.lru import LRUPolicy
from repro.cache.replacement.random_policy import RandomPolicy
from repro.cache.replacement.timestamp_lru import TimestampLRUPolicy
from repro.cache.replacement.dip import BIPPolicy, DIPPolicy, LIPPolicy
from repro.cache.replacement.plru import PLRUPolicy
from repro.cache.replacement.srrip import BRRIPPolicy, DRRIPPolicy, SRRIPPolicy

__all__ = [
    "ReplacementPolicy",
    "LRUPolicy",
    "RandomPolicy",
    "TimestampLRUPolicy",
    "DIPPolicy",
    "BIPPolicy",
    "LIPPolicy",
    "PLRUPolicy",
    "SRRIPPolicy",
    "BRRIPPolicy",
    "DRRIPPolicy",
]

_REGISTRY = {
    "lru": LRUPolicy,
    "random": RandomPolicy,
    "tslru": TimestampLRUPolicy,
    "dip": DIPPolicy,
    "bip": BIPPolicy,
    "lip": LIPPolicy,
    "plru": PLRUPolicy,
    "srrip": SRRIPPolicy,
    "brrip": BRRIPPolicy,
    "drrip": DRRIPPolicy,
}


def make_policy(name: str, **kwargs) -> ReplacementPolicy:
    """Instantiate a replacement policy by registry name.

    Args:
        name: one of ``lru``, ``random``, ``tslru``, ``dip``, ``bip``,
            ``lip``, ``srrip``.
        kwargs: forwarded to the policy constructor.
    """
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ValueError(f"unknown replacement policy {name!r}; known: {sorted(_REGISTRY)}")
    return cls(**kwargs)
