"""Coarse timestamp-based LRU, as used by ZCache/Vantage [16, 17].

Instead of a per-set recency list, every block carries a K-bit timestamp
stamped from a global access counter that increments once every
``accesses_per_tick`` cache accesses. The eviction order ranks blocks by
wrap-around age. The PriSM-vs-Vantage comparison (Fig. 7/8) uses this
policy as the common baseline for both schemes, mirroring Section 5.3.
"""

from __future__ import annotations

from typing import List

from repro.cache.cacheset import CacheSet
from repro.cache.replacement.base import ReplacementPolicy

__all__ = ["TimestampLRUPolicy"]


class TimestampLRUPolicy(ReplacementPolicy):
    """Timestamp LRU with ``bits``-wide timestamps.

    Args:
        bits: timestamp width (8 in the Vantage paper).
        accesses_per_tick: global accesses per timestamp increment. ``None``
            picks 1/16 of the cache's block count at :meth:`bind` time, the
            granularity used by the Vantage paper.
    """

    name = "tslru"

    def __init__(self, bits: int = 8, accesses_per_tick: int = None) -> None:
        if bits < 2:
            raise ValueError(f"timestamp bits must be >= 2, got {bits}")
        self.bits = bits
        self._modulus = 1 << bits
        self._configured_tick = accesses_per_tick
        self.accesses_per_tick = accesses_per_tick or 1
        self.now = 0
        self._access_count = 0

    def bind(self, cache) -> None:
        super().bind(cache)
        if self._configured_tick is None:
            self.accesses_per_tick = max(1, cache.geometry.num_blocks // 16)

    def notify_access(self, cset) -> None:
        self._access_count += 1
        if self._access_count >= self.accesses_per_tick:
            self._access_count = 0
            self.now = (self.now + 1) % self._modulus

    def age(self, block) -> int:
        """Wrap-around age of ``block`` in timestamp ticks."""
        return (self.now - block.timestamp) % self._modulus

    insert_fill = staticmethod(CacheSet.fill_mru)
    replace_fill = staticmethod(CacheSet.replace_mru)

    def on_hit(self, cset, block, core: int) -> None:
        block.timestamp = self.now
        cset.promote(block)

    def on_fill(self, cset, block, core: int) -> None:
        block.timestamp = self.now

    def eviction_order(self, cset) -> List:
        # Oldest first; among same-tick blocks the LRU-most goes first
        # (stable sort over the LRU→MRU walk).
        return sorted(cset.iter_lru_to_mru(), key=self.age, reverse=True)
