"""True LRU — the paper's default baseline replacement policy."""

from __future__ import annotations

from typing import List

from repro.cache.cacheset import CacheSet
from repro.cache.replacement.base import ReplacementPolicy

__all__ = ["LRUPolicy"]


class LRUPolicy(ReplacementPolicy):
    """Least-recently-used replacement.

    Fills insert at MRU, hits promote to MRU, and the eviction order walks
    the recency list from the LRU end. Every hot-path operation is O(1) on
    the linked-list set — and the hooks *are* the set operations (exposed
    via ``staticmethod``), so the cache calls them with no delegation frame.
    """

    name = "lru"
    recency_ordered = True

    insert_fill = staticmethod(CacheSet.fill_mru)
    replace_fill = staticmethod(CacheSet.replace_mru)
    on_hit = staticmethod(CacheSet.hit_promote)

    def victim(self, cset):
        return cset.lru_block()

    def eviction_candidates(self, cset):
        return cset.iter_lru_to_mru()

    def eviction_order(self, cset) -> List:
        return list(cset.iter_lru_to_mru())
