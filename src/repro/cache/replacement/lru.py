"""True LRU — the paper's default baseline replacement policy."""

from __future__ import annotations

from typing import List

from repro.cache.replacement.base import ReplacementPolicy

__all__ = ["LRUPolicy"]


class LRUPolicy(ReplacementPolicy):
    """Least-recently-used replacement.

    Fills insert at MRU, hits promote to MRU, and the eviction order walks
    the recency list from the LRU end.
    """

    name = "lru"

    def insertion_position(self, cset, core: int) -> int:
        return 0

    def eviction_order(self, cset) -> List:
        return cset.blocks[::-1]
