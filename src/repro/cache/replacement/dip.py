"""LIP / BIP / DIP insertion policies (Qureshi et al., ISCA 2007 [13]).

- **LIP** inserts every fill at the LRU position; a block must be reused to
  be promoted to MRU.
- **BIP** is LIP that inserts at MRU with a small probability ``epsilon``
  (1/32 in the paper), which lets it retain part of a thrashing working set.
- **DIP** (dynamic insertion policy) set-duels LRU against BIP: a few leader
  sets always use LRU, a few always use BIP, and a saturating policy
  selector (PSEL) updated on leader-set misses decides what the follower
  sets do.

DIP does **not** exhibit the stack property, which is exactly why the paper
uses it in Section 5.6 to show PriSM is replacement-policy agnostic (UCP,
by contrast, cannot run on top of DIP).
"""

from __future__ import annotations

from typing import List

from repro.cache.cacheset import CacheSet
from repro.cache.replacement.base import ReplacementPolicy
from repro.util.rng import make_rng

__all__ = ["LIPPolicy", "BIPPolicy", "DIPPolicy"]


class LIPPolicy(ReplacementPolicy):
    """LRU-insertion policy: fills land at the LRU end."""

    name = "lip"
    recency_ordered = True

    insert_fill = staticmethod(CacheSet.fill_lru)
    replace_fill = staticmethod(CacheSet.replace_lru)
    on_hit = staticmethod(CacheSet.hit_promote)

    def insertion_position(self, cset, core: int) -> int:
        return cset.assoc  # clamped to the tail by CacheSet.fill

    def victim(self, cset):
        return cset.lru_block()

    def eviction_candidates(self, cset):
        return cset.iter_lru_to_mru()

    def eviction_order(self, cset) -> List:
        return list(cset.iter_lru_to_mru())


class BIPPolicy(LIPPolicy):
    """Bimodal insertion: LRU-insert, except MRU-insert with prob ``epsilon``."""

    name = "bip"

    def __init__(self, epsilon: float = 1.0 / 32.0, seed: int = 0) -> None:
        if not 0.0 < epsilon <= 1.0:
            raise ValueError(f"epsilon must be in (0, 1], got {epsilon}")
        self.epsilon = epsilon
        self._rng = make_rng(seed, "bip")

    def insertion_position(self, cset, core: int) -> int:
        if self._rng.random() < self.epsilon:
            return 0
        return cset.assoc

    def insert_fill(self, cset, tag: int, core: int):
        if self._rng.random() < self.epsilon:
            return cset.fill_mru(tag, core)
        return cset.fill_lru(tag, core)

    def replace_fill(self, cset, victim, tag: int, core: int):
        if self._rng.random() < self.epsilon:
            return cset.replace_mru(victim, tag, core)
        return cset.replace_lru(victim, tag, core)


class DIPPolicy(ReplacementPolicy):
    """Dynamic insertion policy with set dueling.

    Args:
        epsilon: BIP's bimodal probability.
        leader_sets: leader sets *per policy*; spread evenly over the cache.
        psel_bits: width of the saturating policy selector.
        seed: RNG seed for the bimodal draws.
    """

    name = "dip"
    recency_ordered = True

    on_hit = staticmethod(CacheSet.hit_promote)

    def __init__(
        self,
        epsilon: float = 1.0 / 32.0,
        leader_sets: int = 4,
        psel_bits: int = 10,
        seed: int = 0,
    ) -> None:
        if leader_sets < 1:
            raise ValueError(f"leader_sets must be >= 1, got {leader_sets}")
        self.epsilon = epsilon
        self.leader_sets = leader_sets
        self.psel_max = (1 << psel_bits) - 1
        self.psel = self.psel_max // 2
        self._rng = make_rng(seed, "dip")
        self._role = {}  # set index -> "lru" | "bip" | "follow"

    def bind(self, cache) -> None:
        super().bind(cache)
        num_sets = cache.geometry.num_sets
        leaders = min(self.leader_sets, max(1, num_sets // 2))
        stride = max(1, num_sets // (2 * leaders))
        self._role = {}
        for i in range(leaders):
            self._role[(2 * i) * stride % num_sets] = "lru"
            self._role[(2 * i + 1) * stride % num_sets] = "bip"

    def role_of(self, set_index: int) -> str:
        """Dueling role of a set: ``lru``, ``bip`` or ``follow``."""
        return self._role.get(set_index, "follow")

    def _uses_bip(self, set_index: int) -> bool:
        role = self.role_of(set_index)
        if role == "lru":
            return False
        if role == "bip":
            return True
        # PSEL above midpoint means LRU-leader sets missed more -> use BIP.
        return self.psel > self.psel_max // 2

    def record_miss(self, cset, core: int) -> None:
        role = self.role_of(cset.index)
        if role == "lru" and self.psel < self.psel_max:
            self.psel += 1
        elif role == "bip" and self.psel > 0:
            self.psel -= 1

    def insertion_position(self, cset, core: int) -> int:
        if self._uses_bip(cset.index):
            if self._rng.random() < self.epsilon:
                return 0
            return cset.assoc
        return 0

    def insert_fill(self, cset, tag: int, core: int):
        if self._uses_bip(cset.index) and self._rng.random() >= self.epsilon:
            return cset.fill_lru(tag, core)
        return cset.fill_mru(tag, core)

    def replace_fill(self, cset, victim, tag: int, core: int):
        if self._uses_bip(cset.index) and self._rng.random() >= self.epsilon:
            return cset.replace_lru(victim, tag, core)
        return cset.replace_mru(victim, tag, core)

    def victim(self, cset):
        return cset.lru_block()

    def eviction_candidates(self, cset):
        return cset.iter_lru_to_mru()

    def eviction_order(self, cset) -> List:
        return list(cset.iter_lru_to_mru())
