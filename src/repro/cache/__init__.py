"""Set-associative shared-cache substrate.

This package provides the hardware model that every management scheme in
:mod:`repro.partitioning` and the PriSM framework in :mod:`repro.core` plug
into:

- :class:`~repro.cache.geometry.CacheGeometry` — size/associativity/block
  arithmetic,
- :class:`~repro.cache.cache.SharedCache` — the shared last-level cache with
  per-core occupancy counters and interval bookkeeping,
- replacement policies (:mod:`repro.cache.replacement`) — LRU, coarse
  timestamp LRU, DIP (LIP/BIP with set dueling), SRRIP, random,
- monitors — sampled per-core shadow tags with per-recency-position hit
  counters (:class:`~repro.cache.shadow.ShadowTagMonitor`), which double as
  UCP's UMON utility monitors,
- backends — the numpy batch engine (:class:`~repro.cache.vector.VectorCache`)
  with its trace pre-encoder (:mod:`repro.cache.encode`) and the
  :func:`~repro.cache.backends.build_cache` selector that falls back to the
  classic engine for configurations the vector engine cannot represent.
"""

from repro.cache.backends import BACKENDS, build_cache, resolve_backend
from repro.cache.block import CacheBlock
from repro.cache.cacheset import CacheSet
from repro.cache.geometry import CacheGeometry
from repro.cache.cache import AccessResult, SharedCache
from repro.cache.history import IntervalHistory
from repro.cache.stats import CacheStats
from repro.cache.shadow import ShadowTagMonitor

__all__ = [
    "AccessResult",
    "BACKENDS",
    "CacheBlock",
    "CacheGeometry",
    "CacheSet",
    "CacheStats",
    "IntervalHistory",
    "SharedCache",
    "ShadowTagMonitor",
    "build_cache",
    "resolve_backend",
]
