"""Cache geometry arithmetic.

Addresses throughout the simulator are *block addresses* (integers that
already had the byte offset stripped); the geometry maps a block address to
a (set index, tag) pair and exposes the derived counts the PriSM analytical
model needs (``N``, the total number of blocks).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validate import check_power_of_two

__all__ = ["CacheGeometry"]


@dataclass(frozen=True)
class CacheGeometry:
    """Geometry of a set-associative cache.

    Attributes:
        size_bytes: total capacity in bytes.
        block_bytes: cache-block (line) size in bytes.
        assoc: associativity (number of ways per set).
    """

    size_bytes: int
    block_bytes: int = 64
    assoc: int = 16

    def __post_init__(self) -> None:
        check_power_of_two("size_bytes", self.size_bytes)
        check_power_of_two("block_bytes", self.block_bytes)
        check_power_of_two("assoc", self.assoc)
        if self.num_blocks % self.assoc != 0:
            raise ValueError(
                f"capacity {self.size_bytes}B / {self.block_bytes}B blocks is not "
                f"divisible into {self.assoc}-way sets"
            )
        if self.num_sets < 1:
            raise ValueError("geometry yields zero sets")

    @property
    def num_blocks(self) -> int:
        """Total number of cache blocks (``N`` in the paper's notation)."""
        return self.size_bytes // self.block_bytes

    @property
    def num_sets(self) -> int:
        """Number of cache sets."""
        return self.num_blocks // self.assoc

    def set_index(self, block_addr: int) -> int:
        """Map a block address to its set index."""
        return block_addr & (self.num_sets - 1)

    def tag(self, block_addr: int) -> int:
        """Map a block address to its tag (set-index bits stripped)."""
        return block_addr >> (self.num_sets - 1).bit_length() if self.num_sets > 1 else block_addr

    def block_addr(self, set_index: int, tag: int) -> int:
        """Inverse of (:meth:`set_index`, :meth:`tag`)."""
        if self.num_sets == 1:
            return tag
        return (tag << (self.num_sets - 1).bit_length()) | set_index

    def scaled(self, factor: int) -> "CacheGeometry":
        """Return a geometry with capacity divided by ``factor`` (same assoc)."""
        check_power_of_two("factor", factor)
        return CacheGeometry(self.size_bytes // factor, self.block_bytes, self.assoc)

    def __str__(self) -> str:
        if self.size_bytes >= 1 << 20:
            size = f"{self.size_bytes >> 20}MB"
        else:
            size = f"{self.size_bytes >> 10}KB"
        return f"{size}/{self.assoc}way/{self.block_bytes}B"
