"""Cache-backend selection: the classic object-model engine vs the vector engine.

Two engines implement the same shared-cache semantics:

- ``"classic"`` — :class:`~repro.cache.cache.SharedCache`, one access at a
  time over an intrusive-list object model. Supports every policy, scheme
  and monitor in the repo.
- ``"vector"`` — :class:`~repro.cache.vector.VectorCache`, numpy-backed
  state replayed in batches. Several times faster on batch replays, but
  only for the configurations it can represent (LRU/DIP baselines,
  PriSM or no scheme, interval-level monitors and shadow tags).

The two are certified bit-exact by ``repro-sim check fuzz --backend
vector`` (see :mod:`repro.check.differential`), which is why the backend
is *excluded* from campaign fingerprints: a result does not depend on it.

:func:`build_cache` is the one place the choice is made. When the vector
engine cannot represent a configuration it raises
:class:`~repro.cache.vector.VectorUnsupported` at construction time;
``build_cache`` turns that into a loud ``RuntimeWarning`` plus a classic
fallback (or re-raises under ``strict=True``), so experiment code never
has to know which configurations are vectorisable.
"""

from __future__ import annotations

import warnings
from typing import Optional, Sequence, Tuple

from repro.cache.cache import SharedCache
from repro.cache.geometry import CacheGeometry
from repro.cache.replacement.base import ReplacementPolicy

__all__ = ["BACKENDS", "build_cache", "resolve_backend"]

#: Recognised backend names, in preference order for documentation.
BACKENDS = ("classic", "vector")


def resolve_backend(backend: Optional[str]) -> str:
    """Normalise and validate a backend argument (``None`` = classic)."""
    if backend is None:
        return "classic"
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown cache backend {backend!r} (choose from {BACKENDS})"
        )
    return backend


def build_cache(
    geometry: CacheGeometry,
    num_cores: int,
    policy: Optional[ReplacementPolicy] = None,
    scheme=None,
    backend: str = "classic",
    strict: bool = False,
    core_map: Optional[Sequence[int]] = None,
    track_sharers: bool = False,
) -> Tuple[object, str]:
    """Build a shared cache under ``backend``; attach ``scheme`` if given.

    Args:
        geometry: size/associativity description.
        num_cores: number of accounting owners (cores, or clusters when
            ``core_map`` is given).
        policy: baseline replacement policy (``None`` = true LRU).
        scheme: management scheme to attach, or ``None``.
        backend: ``"classic"`` or ``"vector"``.
        strict: under ``backend="vector"``, re-raise
            :class:`~repro.cache.vector.VectorUnsupported` instead of
            falling back to the classic engine.
        core_map: optional cluster map (:mod:`repro.clustering`) mapping
            real core ids to accounting groups in ``[0, num_cores)``.
        track_sharers: maintain per-block sharer bitmasks (shared-data
            workloads; see ``docs/simulator.md``).

    Returns:
        ``(cache, backend_used)`` — ``backend_used`` is the engine that
        was actually built (``"classic"`` after a fallback).
    """
    backend = resolve_backend(backend)
    if backend == "vector":
        from repro.cache.vector import VectorCache, VectorUnsupported

        try:
            # Constructor-time validation happens before any mutation of
            # policy/scheme, so a failed attempt leaves both reusable.
            return (
                VectorCache(
                    geometry,
                    num_cores,
                    policy=policy,
                    scheme=scheme,
                    core_map=core_map,
                    track_sharers=track_sharers,
                ),
                "vector",
            )
        except VectorUnsupported as exc:
            if strict:
                raise
            warnings.warn(
                f"vector backend unavailable for this configuration "
                f"({exc}); falling back to the classic engine",
                RuntimeWarning,
                stacklevel=2,
            )
    cache = SharedCache(
        geometry, num_cores, policy=policy,
        core_map=core_map, track_sharers=track_sharers,
    )
    if scheme is not None:
        cache.set_scheme(scheme)
    return cache, "classic"
