"""Interval-history recorder.

A monitor that snapshots the control loop's trajectory — per-core
occupancy, and the scheme's targets/eviction probabilities when a PriSM
scheme is attached — at every allocation interval. Use it to inspect (or
export and plot) convergence, phase adaptation, and oscillation:

    history = IntervalHistory(cache)
    system.run(...)
    history.to_rows()       # list of flat dicts, CSV-ready

Snapshots are taken after the scheme's interval update, so each record
pairs the occupancy *entering* an interval with the distribution that
will govern it.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cache.cache import SharedCache

__all__ = ["IntervalHistory"]


class IntervalHistory:
    """Record per-interval control-loop state.

    Args:
        cache: the cache to observe (self-registers as a monitor).
        max_records: ring-buffer bound (None = unbounded).
    """

    def __init__(self, cache: SharedCache, max_records: Optional[int] = None) -> None:
        if max_records is not None and max_records < 1:
            raise ValueError(f"max_records must be >= 1, got {max_records}")
        self.cache = cache
        self.max_records = max_records
        self.records: List[Dict] = []
        cache.add_monitor(self)

    def observe(self, core: int, set_index: int, tag: int, hit: bool) -> None:
        pass

    observe._hot_noop = True  # only end_interval matters; skip per-access calls

    def end_interval(self) -> None:
        scheme = self.cache.scheme
        record: Dict = {
            "interval": self.cache.intervals_completed + 1,
            "occupancy": self.cache.occupancy_fractions(),
        }
        if scheme is not None:
            targets = getattr(scheme, "targets", None)
            if targets:
                record["targets"] = list(targets)
            manager = getattr(scheme, "manager", None)
            if manager is not None:
                record["probabilities"] = list(manager.probabilities)
            quotas = getattr(scheme, "quotas", None)
            if quotas:
                record["quotas"] = list(quotas)
        self.records.append(record)
        if self.max_records is not None and len(self.records) > self.max_records:
            del self.records[0]

    def series(self, field: str, core: int) -> List[float]:
        """One core's trajectory of ``field`` (occupancy/targets/...)."""
        return [r[field][core] for r in self.records if field in r]

    def to_rows(self) -> List[Dict]:
        """Flatten to CSV-friendly rows (one row per interval per core)."""
        rows = []
        for record in self.records:
            for core, occupancy in enumerate(record["occupancy"]):
                row = {
                    "interval": record["interval"],
                    "core": core,
                    "occupancy": occupancy,
                }
                for field, column in (
                    ("targets", "target"),
                    ("probabilities", "probability"),
                    ("quotas", "quota"),
                ):
                    if field in record:
                        row[column] = record[field][core]
                rows.append(row)
        return rows
