"""A single cache block (line) and its per-policy metadata."""

from __future__ import annotations

__all__ = ["CacheBlock"]


class CacheBlock:
    """One cache line.

    Blocks are mutable and pooled inside their :class:`~repro.cache.cacheset.CacheSet`;
    a block is reused across fills rather than reallocated.

    Attributes:
        tag: address tag; meaningful only while ``valid``.
        core: id of the *accounting owner* — the core (program) whose
            occupancy counter ``C_i`` this block is charged to. All
            partitioning schemes in this repo, like the paper, attribute a
            block to the core that inserted it; under core clustering
            (:mod:`repro.clustering`) this is the inserting core's
            accounting group instead of the raw core id.
        valid: whether the block holds data.
        timestamp: coarse timestamp used by timestamp-LRU / Vantage.
        rrpv: re-reference prediction value used by SRRIP.
        managed: Vantage region flag (``True`` = managed region).
        filler: real (pre-clustering) id of the core that performed the
            fill. Maintained only when the owning cache runs with a
            ``core_map``; equal to ``core`` otherwise and stale (``-1``)
            when clustering is off — the cluster-conservation invariant
            reads it, the hot path never does.
        sharers: bitmask of accounting owners that touched this block
            since its last fill (bit ``i`` = owner ``i``). Maintained only
            when the owning cache runs with ``track_sharers``; always
            includes the accounting owner's bit while tracked.
        prev, next: intrusive recency-list links owned by the block's
            :class:`~repro.cache.cacheset.CacheSet`; ``None`` while the
            block sits in the free pool.
    """

    __slots__ = (
        "tag", "core", "valid", "timestamp", "rrpv", "managed",
        "filler", "sharers", "prev", "next",
    )

    def __init__(self) -> None:
        self.tag = -1
        self.core = -1
        self.valid = False
        self.timestamp = 0
        self.rrpv = 0
        self.managed = True
        self.filler = -1
        self.sharers = 0
        self.prev = None
        self.next = None

    def fill(self, tag: int, core: int) -> None:
        """(Re)fill this block for ``core`` with ``tag``."""
        self.tag = tag
        self.core = core
        self.valid = True
        self.timestamp = 0
        self.rrpv = 0
        self.managed = True

    def invalidate(self) -> None:
        """Mark the block empty."""
        self.tag = -1
        self.core = -1
        self.valid = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if not self.valid:
            return "<block invalid>"
        return f"<block tag={self.tag:#x} core={self.core}>"
