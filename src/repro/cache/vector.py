"""The vector cache backend: numpy-backed state, batch access processing.

:class:`VectorCache` represents every set's state as flat arrays — per-set
tag/owner/age matrices of shape ``(num_sets, assoc)``, a per-set valid-way
count, and (under PriSM) a per-set-per-core residency-count matrix — and
replays a pre-encoded trace (:mod:`repro.cache.encode`) in chunks instead
of one access at a time. It is certified **bit-exact** against the classic
:class:`~repro.cache.cache.SharedCache` and the naive
:mod:`repro.check.reference` oracle by ``repro-sim check fuzz --backend
vector`` for every supported scheme.

Recency encoding
----------------

The classic engine keeps recency as an intrusive doubly-linked list. Every
supported policy only ever inserts at the list ends (MRU promotion/fill, or
DIP's LRU-insert), so the order is exactly reproduced by *stamps*: a
promotion or MRU fill stamps the block with a strictly increasing counter
(the global access position), an LRU-insert stamps it from a strictly
decreasing negative counter. "LRU-most block" is then "minimum stamp", and
a full recency walk is an argsort — no list exists at all.

Batch discipline (why results stay bit-exact)
---------------------------------------------

Accesses are processed in chunks. Against the chunk-start state the engine
predicts hit/miss and way per access with one vectorised lookup; the
prediction for an access is exact unless an *earlier* access in the chunk
mutated its set, and within a chunk only misses mutate a set's contents.
Hence the taint rule: let ``first_miss[s]`` be the position of set ``s``'s
first predicted miss in the chunk — every access with
``position > first_miss[set]`` is **tainted** and is replayed through the
scalar path in exact global order; everything else is *clean* and can be
applied out of order:

- clean hits touch only their own block's stamp (``np.maximum.at`` makes
  duplicate hits last-writer-wins) and never feed a victim choice before
  their set's first miss, so a bulk scatter is exact;
- clean misses are each the first miss of their set in the chunk, so their
  victim choices read exact state and at most one per set exists — they
  are processed as vectorised batches *in global order*, interleaved with
  the tainted scalar replays.

RNG draw-order discipline
-------------------------

PriSM's core-selection must consume ``make_rng(seed, "prism-manager")`` in
exactly the classic per-replacement order (the fallback draws one extra
value). The engine pre-pulls draws from the manager's RNG into a FIFO and
consumes them strictly sequentially: batched victim sampling maps a slice
of the FIFO through ``np.searchsorted`` (= ``bisect_right`` per draw), and
whenever a fallback (or an interval boundary, which re-installs ``E``)
perturbs the mapping, the remainder of the slice is re-mapped from the
next FIFO position. DIP's bimodal stream is consumed only on the scalar
path, which runs in exact miss order by construction.

Interval and counter accounting
-------------------------------

Per-core hit counts for clean hits and shadow-tag observations are
deferred and flushed in position order at every interval boundary and
chunk end, so ``CacheStats`` interval views, ``E_i``/``T_i`` inputs and
telemetry samples are byte-identical to the classic engine's. Misses,
evictions and occupancy are updated at event time (in order). The interval
countdown splits miss batches so ``end_interval`` fires after exactly the
same miss as in the classic engine.

Supported configurations
------------------------

Baseline policy ``LRUPolicy`` or ``DIPPolicy``; scheme ``None`` or
``PrismScheme`` (any allocation policy — the scheme object itself is
reused wholesale, so Algorithms 1-3, quantisation and bias correction are
the same code as the classic engine). Monitors must be interval-level
(``observe`` tagged ``_hot_noop``) or ``ShadowTagMonitor``. Anything else
raises :class:`VectorUnsupported`; callers (``resolve_backend``) fall back
to the classic engine.
"""

from __future__ import annotations

from bisect import bisect_right
from time import perf_counter
from typing import List, Optional, Sequence

import numpy as np

from repro.cache.cache import AccessResult
from repro.cache.encode import EncodedTrace, encode_accesses
from repro.cache.geometry import CacheGeometry
from repro.cache.replacement.base import ReplacementPolicy
from repro.cache.replacement.dip import DIPPolicy
from repro.cache.replacement.lru import LRUPolicy
from repro.cache.stats import CacheStats

__all__ = ["BatchResults", "VectorCache", "VectorUnsupported"]

#: Sentinel larger than any stamp (stamps are bounded by total accesses).
_FAR = np.int64(1) << 62


class VectorUnsupported(ValueError):
    """The vector backend cannot represent this configuration exactly."""


def _is_hot_noop(method) -> bool:
    func = getattr(method, "__func__", method)
    return bool(getattr(func, "_hot_noop", False))


class BatchResults:
    """Per-access outcomes of one :meth:`VectorCache.access_many` call.

    Stored as parallel arrays (building millions of ``AccessResult``
    tuples would dominate the batch runtime); :meth:`result` materialises
    one on demand and iteration yields them in order.
    """

    __slots__ = ("hit", "set_index", "evicted_core", "evicted_addr")

    def __init__(self, hit, set_index, evicted_core, evicted_addr) -> None:
        self.hit = hit
        self.set_index = set_index
        self.evicted_core = evicted_core
        self.evicted_addr = evicted_addr

    def __len__(self) -> int:
        return len(self.hit)

    def result(self, i: int) -> AccessResult:
        return AccessResult(
            bool(self.hit[i]),
            int(self.set_index[i]),
            int(self.evicted_core[i]),
            int(self.evicted_addr[i]),
        )

    def __iter__(self):
        for i in range(len(self.hit)):
            yield self.result(i)


class VectorCache:
    """Array-backed shared cache, API-compatible with ``SharedCache``.

    Args:
        geometry: size/associativity description.
        num_cores: number of sharing cores.
        policy: baseline replacement policy (``LRUPolicy`` or
            ``DIPPolicy``; anything else raises
            :class:`VectorUnsupported`).
        scheme: optional management scheme (``PrismScheme`` only).
        chunk: batch granularity override (default: auto from geometry).
        core_map: optional cluster map (:mod:`repro.clustering`):
            ``core_map[real_core]`` is the accounting group charged for
            the core's blocks. Applied as one vectorised index
            translation at batch entry, so the slab fast paths run
            unchanged at cluster granularity.
        track_sharers: maintain per-block sharer bitmasks. Replays run
            through the (equally certified) scalar path — the slab fast
            paths stay reserved for exclusive-ownership replays, which is
            what the speed floors measure. Capped at 64 accounting
            owners (uint64 masks), matching the 16-64 core scale-out.
    """

    def __init__(
        self,
        geometry: CacheGeometry,
        num_cores: int,
        policy: Optional[ReplacementPolicy] = None,
        scheme=None,
        chunk: Optional[int] = None,
        core_map: Optional[Sequence[int]] = None,
        track_sharers: bool = False,
    ) -> None:
        if num_cores < 1:
            raise ValueError(f"num_cores must be >= 1, got {num_cores}")
        if track_sharers and num_cores > 64:
            raise VectorUnsupported(
                f"sharer bitmasks are uint64: at most 64 accounting owners, "
                f"got {num_cores}"
            )
        self.geometry = geometry
        self.num_cores = num_cores
        if core_map is not None:
            core_map_arr = np.asarray(core_map, dtype=np.int64)
            if core_map_arr.ndim != 1 or not len(core_map_arr):
                raise ValueError("core_map must map at least one core")
            if core_map_arr.min() < 0 or core_map_arr.max() >= num_cores:
                raise ValueError(
                    f"core_map groups must lie in [0, {num_cores})"
                )
            self._core_map_arr: Optional[np.ndarray] = core_map_arr
        else:
            self._core_map_arr = None
        self.real_num_cores = (
            len(self._core_map_arr) if self._core_map_arr is not None else num_cores
        )
        self.track_sharers = bool(track_sharers)
        self._set_mask = geometry.num_sets - 1
        self._tag_shift = self._set_mask.bit_length()
        self.policy = policy if policy is not None else LRUPolicy()
        if type(self.policy) not in (LRUPolicy, DIPPolicy):
            raise VectorUnsupported(
                f"vector backend supports LRUPolicy/DIPPolicy baselines, "
                f"got {type(self.policy).__name__}"
            )
        nsets = geometry.num_sets
        assoc = geometry.assoc
        self.num_sets = nsets
        self.assoc = assoc
        # Set state. Tags are non-negative, so -1 never matches a lookup.
        self._tags = np.full((nsets, assoc), -1, dtype=np.int64)
        self._owners = np.full((nsets, assoc), -1, dtype=np.int64)
        self._ages = np.zeros((nsets, assoc), dtype=np.int64)
        self._ages_flat = self._ages.reshape(-1)
        self._nvalid = np.zeros(nsets, dtype=np.int64)
        # Most-recently-touched hint per set: if _mru_tag[s] == tag the
        # access is a guaranteed (resident) hit at _mru_way[s]; the batch
        # predictor skips the full row lookup for those accesses.
        self._mru_tag = np.full(nsets, -1, dtype=np.int64)
        self._mru_way = np.zeros(nsets, dtype=np.int64)
        # Per-block sharer bitmasks (bit i = accounting owner i); allocated
        # only when tracked — the fast paths never touch them.
        self._sharers: Optional[np.ndarray] = (
            np.zeros((nsets, assoc), dtype=np.uint64) if self.track_sharers else None
        )
        # Per-(set, core) residency counts; maintained only under PriSM
        # (the manager's victim sampling and fallbacks read them).
        self._counts: Optional[np.ndarray] = None
        # _core_counts key-insertion order per set (the classic defaultdict
        # materialises keys on fills *and* on sampled-target probes, and
        # the resample fallback iterates in that order).
        self._order: Optional[List[List[int]]] = None
        self._seen: Optional[List[int]] = None

        self.occupancy: List[int] = [0] * num_cores
        self.stats = CacheStats(num_cores)
        self.monitors: list = []
        self.scheme = None
        self.telemetry = None
        self.intervals_completed = 0
        self._interval_len = 0
        self._interval_left = 0
        self._clock = 0  # accesses processed; MRU stamps are positions
        self._low = 0  # decreasing stamp source for LRU-inserts

        self._mgr = None
        self._cum_np: Optional[np.ndarray] = None
        self._draws = np.empty(0, dtype=np.float64)  # pre-pulled RNG FIFO
        self._didx = 0
        self._dip: Optional[DIPPolicy] = (
            self.policy if isinstance(self.policy, DIPPolicy) else None
        )
        self._shadows: list = []
        self._shadow_observes: tuple = ()
        self._shadow_masks: tuple = ()
        self._interval_monitors: tuple = ()

        # Reusable chunk scratch (grown on demand).
        self._fm = np.full(nsets, _FAR, dtype=np.int64)
        self._pmask = np.zeros(nsets, dtype=bool)
        self._pend_tag = np.zeros(nsets, dtype=np.int64)
        self._arange = np.arange(0, dtype=np.int64)
        self._reset_pending()

        self._chunk = chunk
        self.policy.bind(self)
        if scheme is not None:
            self.set_scheme(scheme)

    # -- wiring -----------------------------------------------------------

    def set_scheme(self, scheme) -> None:
        """Attach a management scheme (``PrismScheme`` only)."""
        from repro.core.prism import PrismScheme

        if type(scheme) is not PrismScheme:
            raise VectorUnsupported(
                f"vector backend supports PrismScheme (or no scheme), got "
                f"{type(scheme).__name__}"
            )
        self.scheme = scheme
        scheme.attach(self)
        self._interval_len = getattr(scheme, "interval_len", 0) or 0
        self._interval_left = self._interval_len
        self._mgr = scheme.manager
        self._cum_np = np.asarray(self._mgr._cumulative, dtype=np.float64)
        self._counts = np.zeros((self.num_sets, self.num_cores), dtype=np.int64)
        self._order = [[] for _ in range(self.num_sets)]
        self._seen = [0] * self.num_sets

    def set_telemetry(self, recorder) -> None:
        """Attach a telemetry recorder (fired at each interval boundary)."""
        self.telemetry = recorder

    def add_monitor(self, monitor) -> None:
        """Register an access observer.

        Only interval-level monitors (``observe`` tagged ``_hot_noop``)
        and ``ShadowTagMonitor`` are representable; the shadow's per-access
        observations are replayed in exact position order from the batch
        machinery's deferred queues.
        """
        from repro.cache.shadow import ShadowTagMonitor

        if not isinstance(monitor, ShadowTagMonitor) and not _is_hot_noop(
            monitor.observe
        ):
            raise VectorUnsupported(
                f"vector backend cannot drive per-access monitor "
                f"{type(monitor).__name__}; use the classic backend"
            )
        self.monitors.append(monitor)
        self._shadows = [
            m for m in self.monitors if isinstance(m, ShadowTagMonitor)
        ]
        self._shadow_observes = tuple(m.observe for m in self._shadows)
        self._shadow_masks = tuple(m.sample_mask for m in self._shadows)
        self._interval_monitors = tuple(
            m.end_interval
            for m in self.monitors
            if getattr(m, "end_interval", None) is not None
        )

    # -- derived state ----------------------------------------------------

    @property
    def interval_miss_count(self) -> int:
        interval_len = self._interval_len
        return (interval_len - self._interval_left) if interval_len else 0

    @interval_miss_count.setter
    def interval_miss_count(self, value: int) -> None:
        self._interval_left = self._interval_len - value

    def occupancy_fractions(self) -> List[float]:
        n = self.geometry.num_blocks
        return [occ / n for occ in self.occupancy]

    def valid_blocks(self) -> int:
        return sum(self.occupancy)

    def scan_occupancy(self) -> List[int]:
        """Recompute per-owner occupancy from the owner matrix."""
        owners = self._owners[self._owners >= 0]
        return np.bincount(owners, minlength=self.num_cores).tolist()

    def group_of(self, core: int) -> int:
        """Accounting owner a real core's fills are charged to."""
        if self._core_map_arr is not None:
            return int(self._core_map_arr[core])
        return core

    @property
    def core_map(self) -> Optional[List[int]]:
        """The cluster map in force (``None`` when unclustered)."""
        if self._core_map_arr is not None:
            return self._core_map_arr.tolist()
        return None

    def scan_sharers(self) -> List[tuple]:
        """Sharer state of every resident block, in a comparable shape.

        Sorted ``(set_index, tag, accounting_owner, sharers)`` tuples,
        byte-comparable with ``SharedCache.scan_sharers``.
        """
        rows = []
        sharers = self._sharers
        tags = self._tags
        owners = self._owners
        for s in range(self.num_sets):
            for w in range(int(self._nvalid[s])):
                rows.append(
                    (s, int(tags[s, w]), int(owners[s, w]), int(sharers[s, w]))
                )
        rows.sort()
        return rows

    # -- pending (deferred) accounting ------------------------------------

    def _reset_pending(self) -> None:
        empty = np.empty(0, dtype=np.int64)
        # Deferred hit counts: [positions, cores, consumed-prefix] segments.
        # Each segment is position-sorted; segments overlap in position
        # (the clean-hit bulk spans the chunk, walk stretches interleave),
        # so the flush cuts each segment independently.
        self._ph_segs: List[list] = []
        self._ps_pos = empty  # sampled clean-hit shadow observations
        self._ps_cores = empty
        self._ps_sets = empty
        self._ps_tags = empty
        self._ps_ptr = 0
        # Event-side shadow observations, appended in position order.
        self._pe_pos: List[int] = []
        self._pe_cores: List[int] = []
        self._pe_sets: List[int] = []
        self._pe_tags: List[int] = []
        self._pe_hits: List[bool] = []
        self._pe_ptr = 0

    def _flush_upto(self, pos: int) -> None:
        """Apply deferred hit counts and shadow observations <= ``pos``."""
        total = None
        for seg in self._ph_segs:
            positions, seg_cores, ptr = seg
            k = int(np.searchsorted(positions, pos, side="right"))
            if k > ptr:
                counts = np.bincount(seg_cores[ptr:k], minlength=self.num_cores)
                total = counts if total is None else total + counts
                seg[2] = k
        if total is not None:
            hits = self.stats.hits
            for core in range(self.num_cores):
                hits[core] += int(total[core])
        if not self._shadows:
            return
        i = self._ps_ptr
        j = self._pe_ptr
        k1 = int(np.searchsorted(self._ps_pos, pos, side="right"))
        pe_pos = self._pe_pos
        k2 = j
        nj = len(pe_pos)
        while k2 < nj and pe_pos[k2] <= pos:
            k2 += 1
        if k1 == i and k2 == j:
            return
        rows = list(
            zip(
                self._ps_pos[i:k1].tolist(),
                self._ps_cores[i:k1].tolist(),
                self._ps_sets[i:k1].tolist(),
                self._ps_tags[i:k1].tolist(),
                (True,) * (k1 - i),
            )
        )
        rows.extend(
            zip(
                pe_pos[j:k2],
                self._pe_cores[j:k2],
                self._pe_sets[j:k2],
                self._pe_tags[j:k2],
                self._pe_hits[j:k2],
            )
        )
        rows.sort()  # positions are unique; both inputs are pre-sorted
        observes = self._shadow_observes
        if len(observes) == 1:
            observe = observes[0]
            for _, core, s, t, hit in rows:
                observe(core, s, t, hit)
        else:
            for _, core, s, t, hit in rows:
                for observe in observes:
                    observe(core, s, t, hit)
        self._ps_ptr = k1
        self._pe_ptr = k2

    # -- interval boundary -------------------------------------------------

    def _boundary(self, pos: int) -> None:
        """Fire the allocation interval exactly as the classic engine does."""
        self._flush_upto(pos)
        telemetry = self.telemetry
        if telemetry is None:
            self.scheme.end_interval(self)
        else:
            start = perf_counter()
            self.scheme.end_interval(self)
            telemetry.note_alloc_seconds(perf_counter() - start)
            telemetry.record_interval(self)
        self.stats.reset_interval()
        for end_interval in self._interval_monitors:
            end_interval()
        self._interval_left = self._interval_len
        self.intervals_completed += 1
        if self._mgr is not None:
            self._cum_np = np.asarray(self._mgr._cumulative, dtype=np.float64)

    # -- RNG draw FIFO ------------------------------------------------------

    def _ensure_draws(self, n: int) -> None:
        have = len(self._draws) - self._didx
        if have < n:
            rnd = self._mgr._rng.random
            fresh = np.array(
                [rnd() for _ in range(max(n - have, 512))], dtype=np.float64
            )
            self._draws = np.concatenate([self._draws[self._didx :], fresh])
            self._didx = 0

    def _next_draw(self) -> float:
        if self._didx >= len(self._draws):
            self._ensure_draws(1)
        value = float(self._draws[self._didx])
        self._didx += 1
        return value

    # -- scalar path --------------------------------------------------------

    def access(self, core: int, block_addr: int) -> AccessResult:
        """Simulate one access (the scalar, immediate-mode entry point)."""
        if self._core_map_arr is not None:
            core = int(self._core_map_arr[core])
        s = block_addr & self._set_mask
        t = block_addr >> self._tag_shift
        self._clock += 1
        hit, ecore, eaddr = self._scalar_access(
            int(core), s, t, self._clock, defer=False
        )
        if hit:
            return AccessResult(True, s, -1, -1)
        return AccessResult(False, s, ecore, eaddr)

    def _scalar_access(self, c: int, s: int, t: int, pos: int, defer: bool):
        """One access replayed exactly; state lives in the arrays.

        ``pos`` is the absolute stamp (1-based global access position).
        With ``defer`` the shadow observation is queued for the ordered
        flush; counters for misses (and tainted hits) are immediate either
        way — the deferred queues only ever hold *clean* hits.
        """
        if self._mru_tag[s] == t:  # the hint tag is always resident
            w = int(self._mru_way[s])
            hit = True
        else:
            row = self._tags[s].tolist()
            try:
                w = row.index(t)
                hit = True
            except ValueError:
                w = -1
                hit = False
        if self._shadows and self._is_sampled(s):
            if defer:
                self._pe_pos.append(pos)
                self._pe_cores.append(c)
                self._pe_sets.append(s)
                self._pe_tags.append(t)
                self._pe_hits.append(hit)
            else:
                for observe in self._shadow_observes:
                    observe(c, s, t, hit)

        if hit:
            self.stats.hits[c] += 1
            self._ages[s, w] = pos
            self._mru_tag[s] = t
            self._mru_way[s] = w
            if self._sharers is not None:
                self._sharers[s, w] |= np.uint64(1 << c)
            return True, -1, -1

        self.stats.misses[c] += 1
        dip = self._dip
        if dip is not None:
            role = dip._role.get(s, "follow")
            if role == "lru":
                if dip.psel < dip.psel_max:
                    dip.psel += 1
            elif role == "bip":
                if dip.psel > 0:
                    dip.psel -= 1

        ecore = -1
        eaddr = -1
        counts = self._counts
        if self._nvalid[s] < self.assoc:
            w = int(self._nvalid[s])
            self._nvalid[s] += 1
            if counts is not None:
                self._note_core(s, c)
                counts[s, c] += 1
        else:
            if self._mgr is not None:
                w = self._prism_victim(s)
            else:
                ages = self._ages[s].tolist()
                w = ages.index(min(ages))
            ecore = int(self._owners[s, w])
            eaddr = (int(self._tags[s, w]) << self._tag_shift) | s
            self.occupancy[ecore] -= 1
            self.stats.evictions[ecore] += 1
            if counts is not None and ecore != c:
                counts[s, ecore] -= 1
                self._note_core(s, c)
                counts[s, c] += 1
        self._fill(s, w, t, c, pos, dip)
        self.occupancy[c] += 1

        if self._interval_len:
            left = self._interval_left - 1
            if left:
                self._interval_left = left
            else:
                self._boundary(pos)
        return False, ecore, eaddr

    def _fill(self, s: int, w: int, t: int, c: int, pos: int, dip) -> None:
        """Place (tag, core) into way ``w`` at the policy's position."""
        self._tags[s, w] = t
        self._owners[s, w] = c
        if self._sharers is not None:
            self._sharers[s, w] = np.uint64(1 << c)
        if dip is not None:
            role = dip._role.get(s, "follow")
            if role == "lru":
                bip = False
            elif role == "bip":
                bip = True
            else:
                bip = dip.psel > dip.psel_max // 2
            if bip and dip._rng.random() >= dip.epsilon:
                self._low -= 1
                self._ages[s, w] = self._low
                self._mru_tag[s] = t
                self._mru_way[s] = w
                return
        self._ages[s, w] = pos
        self._mru_tag[s] = t
        self._mru_way[s] = w

    def _is_sampled(self, s: int) -> bool:
        for mask in self._shadow_masks:
            if not (s & mask):
                return True
        return False

    def _note_core(self, s: int, core: int) -> None:
        """Record ``core`` entering set ``s``'s count-key insertion order."""
        bit = 1 << core
        if not (self._seen[s] & bit):
            self._seen[s] |= bit
            self._order[s].append(core)

    def _prism_victim(self, s: int) -> int:
        """Two-step replacement on a full set; returns the victim way."""
        mgr = self._mgr
        mgr.replacements += 1
        target = bisect_right(mgr._cumulative, self._next_draw())
        self._note_core(s, target)
        owners = self._owners[s].tolist()
        ages = self._ages[s].tolist()
        if self._counts[s, target] > 0:
            return self._core_lru_way(owners, ages, target)
        return self._prism_fallback(s, owners, ages)

    def _prism_fallback(self, s: int, owners, ages) -> int:
        """The victim-not-found fallback, matching the classic manager."""
        mgr = self._mgr
        mgr.victim_not_found += 1
        probabilities = mgr.probabilities
        if mgr.fallback == "paper":
            for w in sorted(range(self.assoc), key=ages.__getitem__):
                if probabilities[owners[w]] > 0.0:
                    return w
            return ages.index(min(ages))
        counts = self._counts
        total = 0.0
        for core in self._order[s]:
            if counts[s, core]:
                total += probabilities[core]
        if total <= 0.0:
            return ages.index(min(ages))
        draw = self._next_draw() * total
        acc = 0.0
        chosen = -1
        for core in self._order[s]:
            if counts[s, core]:
                p = probabilities[core]
                if p > 0.0:
                    acc += p
                    chosen = core
                    if draw <= acc:
                        break
        return self._core_lru_way(owners, ages, chosen)

    @staticmethod
    def _core_lru_way(owners, ages, core: int) -> int:
        best = -1
        best_age = None
        for w, owner in enumerate(owners):
            if owner == core and (best_age is None or ages[w] < best_age):
                best = w
                best_age = ages[w]
        return best

    # -- batch path ----------------------------------------------------------

    def access_many(self, cores, addrs=None, collect: bool = False):
        """Replay many accesses; optionally collect per-access results.

        Args:
            cores: an :class:`~repro.cache.encode.EncodedTrace`, or the
                per-access core ids.
            addrs: block addresses (required unless ``cores`` is already
                an encoded trace).
            collect: build a :class:`BatchResults`; leave off on
                throughput-critical replays.

        Returns:
            A :class:`BatchResults` when ``collect``, else ``None``.
        """
        if isinstance(cores, EncodedTrace):
            trace = cores
        else:
            if addrs is None:
                raise TypeError("access_many needs addrs unless given an EncodedTrace")
            trace = encode_accesses(cores, addrs, self.geometry)
        n = len(trace)
        out = None
        if collect:
            out = BatchResults(
                np.zeros(n, dtype=bool),
                trace.set_indices,
                np.full(n, -1, dtype=np.int64),
                np.full(n, -1, dtype=np.int64),
            )
        if n == 0:
            return out
        if self._core_map_arr is not None or self.track_sharers:
            c_all, s_all, t_all = trace
            if self._core_map_arr is not None:
                # Cluster granularity is a pure index translation: every
                # path downstream already works in accounting-owner ids.
                c_all = self._core_map_arr[c_all]
            if self.track_sharers:
                # Sharer masks mutate on every hit, which breaks the
                # out-of-order clean-hit scatter; replay through the
                # scalar path (same state, same RNG order, bit-exact).
                return self._replay_scalar(c_all, s_all, t_all, out)
            trace = EncodedTrace(c_all, s_all, t_all)
        free_order = (
            self.scheme is None
            and self._dip is None
            and not self._shadows
            and type(self.policy) is LRUPolicy
        )
        # Free order re-batches tainted accesses recursively, so big chunks
        # only cost extra rounds; strict order replays tainted accesses
        # scalar, so the chunk is kept small enough that few accesses
        # follow their set's first miss.
        if self._chunk:
            chunk = self._chunk
        elif free_order:
            chunk = max(256, min(8192, 2 * self.num_sets))
        else:
            chunk = max(64, min(4096, self.num_sets // 4))
        c_all, s_all, t_all = trace
        for start in range(0, n, chunk):
            stop = min(start + chunk, n)
            c = c_all[start:stop]
            s = s_all[start:stop]
            t = t_all[start:stop]
            if free_order:
                self._chunk_free(c, s, t, start, out)
            else:
                self._chunk_strict(c, s, t, start, out)
            self._clock += stop - start
        return out

    def _replay_scalar(self, c_all, s_all, t_all, out) -> Optional[BatchResults]:
        """Per-access replay of a batch (the ``track_sharers`` route)."""
        cores_l = c_all.tolist()
        sets_l = s_all.tolist()
        tags_l = t_all.tolist()
        clock = self._clock
        scalar = self._scalar_access
        for i in range(len(cores_l)):
            clock += 1
            hit, ecore, eaddr = scalar(
                cores_l[i], sets_l[i], tags_l[i], clock, defer=False
            )
            if out is not None:
                if hit:
                    out.hit[i] = True
                else:
                    out.evicted_core[i] = ecore
                    out.evicted_addr[i] = eaddr
        self._clock = clock
        return out

    def _predict(self, s, t):
        """Hit/way prediction against current state (exact for clean sets)."""
        hot = self._mru_tag[s] == t
        way = np.empty(len(s), dtype=np.int64)
        hit = hot.copy()
        hot_idx = np.flatnonzero(hot)
        if len(hot_idx):
            way[hot_idx] = self._mru_way[s[hot_idx]]
        cold_idx = np.flatnonzero(~hot)
        if len(cold_idx):
            rows = self._tags[s[cold_idx]]
            eq = rows == t[cold_idx, None]
            hit[cold_idx] = eq.any(axis=1)
            way[cold_idx] = eq.argmax(axis=1)
        return hit, way

    def _taint(self, s, hit, n):
        """The clean/tainted split: tainted follows its set's first miss."""
        if len(self._arange) < n:
            self._arange = np.arange(max(n, 2 * len(self._arange)), dtype=np.int64)
        pos = self._arange[:n]
        miss_idx = np.flatnonzero(~hit)
        if not len(miss_idx):
            return None, np.zeros(n, dtype=bool)
        fm = self._fm
        touched = s[miss_idx]
        fm[touched] = n
        np.minimum.at(fm, touched, miss_idx)
        tainted = pos > fm[s]
        fm[touched] = _FAR
        return miss_idx, tainted

    def _apply_clean_hits(self, ch_idx, c, s, t, way, base, defer_counts):
        """Bulk-apply clean hits: stamps, MRU hints, deferred counters."""
        if not len(ch_idx):
            return
        sets = s[ch_idx]
        ways = way[ch_idx]
        stamps = base + 1 + ch_idx
        # Indices ascend in position and every new stamp exceeds anything
        # already on its way, so fancy assignment's documented
        # last-value-wins semantics apply both stamps and MRU hints.
        self._ages_flat[sets * self.assoc + ways] = stamps
        self._mru_tag[sets] = t[ch_idx]
        self._mru_way[sets] = ways
        cores = c[ch_idx]
        if not defer_counts:
            counts = np.bincount(cores, minlength=self.num_cores)
            hits = self.stats.hits
            for core in range(self.num_cores):
                hits[core] += int(counts[core])
            return
        self._ph_segs.append([stamps, cores, 0])
        if self._shadows:
            sampled = np.zeros(len(ch_idx), dtype=bool)
            for monitor in self._shadows:
                sampled |= (sets & monitor.sample_mask) == 0
            sp = np.flatnonzero(sampled)
            self._ps_pos = stamps[sp]
            self._ps_cores = cores[sp]
            self._ps_sets = sets[sp]
            self._ps_tags = t[ch_idx[sp]]
            self._ps_ptr = 0

    # -- strict (in-order) chunk processing ---------------------------------

    def _chunk_strict(self, c, s, t, offset, out):
        n = len(c)
        base = self._clock
        hit, way = self._predict(s, t)
        miss_idx, tainted = self._taint(s, hit, n)
        clean_hit = hit & ~tainted
        ch_idx = np.flatnonzero(clean_hit)
        defer = bool(self._shadows) or bool(self._interval_len)
        self._apply_clean_hits(ch_idx, c, s, t, way, base, defer)
        if out is not None and len(ch_idx):
            out.hit[offset + ch_idx] = True

        if miss_idx is not None or tainted.any():
            ev_idx = np.flatnonzero(~clean_hit)
            if self._mgr is not None and self._dip is None:
                self._walk_pending(ev_idx, c, s, t, base, offset, out)
            else:
                self._walk_scalar(ev_idx, hit, way, c, s, t, base, offset, out)
        if defer:
            self._flush_upto(base + n)
            self._reset_pending()

    def _walk_scalar(self, ev_idx, hit, way, c, s, t, base, offset, out):
        """In-order event walk with scalar misses (DIP / unmanaged cases).

        Tainted predicted-hit stretches are still verified and applied in
        bulk; every miss replays scalar (DIP's per-miss PSEL update and
        bimodal-insertion draw are inherently sequential).
        """
        i = 0
        n_ev = len(ev_idx)
        while i < n_ev:
            k = int(ev_idx[i])
            if hit[k]:
                # Tainted predicted-hit stretch: by the time the walk
                # reaches it, state is exact, so predictions can be
                # verified vectorised and applied in bulk; the first
                # access whose block moved is replayed scalar below.
                j = i + 1
                while j < n_ev and hit[ev_idx[j]]:
                    j += 1
                if j - i >= 4:
                    applied = self._verify_hits(
                        ev_idx[i:j], c, s, t, way, base, offset, out
                    )
                    i += applied
                    if i == j:
                        continue
                    k = int(ev_idx[i])
            hit_k, ecore, eaddr = self._scalar_access(
                int(c[k]), int(s[k]), int(t[k]), base + 1 + k, defer=True
            )
            if out is not None:
                if hit_k:
                    out.hit[offset + k] = True
                else:
                    out.evicted_core[offset + k] = ecore
                    out.evicted_addr[offset + k] = eaddr
            i += 1

    def _walk_pending(self, ev_idx, c, s, t, base, offset, out):
        """In-order event walk for PriSM-over-LRU with miss accumulation.

        The walk advances through the chunk's events (misses plus accesses
        that follow their set's first predicted miss) in stretches. Each
        stretch re-predicts hit/way against *current* state; a prediction
        is certain unless the access's set holds a pending (unapplied)
        miss or an earlier actual miss within the stretch. Certain hits
        apply in bulk; certain misses are *accumulated* — each is the
        first miss of its set since the last flush, so the pending buffer
        always covers distinct sets in ascending position order and can be
        applied as one vectorised slice. Only a same-set collision (or the
        end of the chunk) forces a flush, so slice count tracks collisions
        rather than taint interruptions, and draw order is preserved: no
        miss is applied out of position order, and verified hits never
        consume draws.

        An access whose tag equals its set's pending-miss tag is a
        guaranteed hit on the block that fill will install ("post-fill
        hit"): it is counted as a hit immediately but its recency stamp is
        deferred and written onto the fill's way after the flush, so the
        common miss-then-rehit pattern does not force a flush either.
        """
        pmask = self._pmask
        pend_tag = self._pend_tag
        pend_parts: List[np.ndarray] = []
        pend_sets: List[np.ndarray] = []
        post_sets: List[np.ndarray] = []
        post_pos: List[np.ndarray] = []
        shadows = bool(self._shadows)
        defer_counts = shadows or bool(self._interval_len)
        hits_stat = self.stats.hits
        i = 0
        n_ev = len(ev_idx)
        while i < n_ev:
            stretch = ev_idx[i : i + 512]
            m = len(stretch)
            S = s[stretch]
            T = t[stretch]
            vhit, vway = self._predict(S, T)
            pm = pmask[S]
            amiss = np.flatnonzero(~vhit)
            if len(amiss):
                if len(self._arange) < m:
                    self._arange = np.arange(
                        max(m, 2 * len(self._arange)), dtype=np.int64
                    )
                fm = self._fm
                touched = S[amiss]
                fm[touched] = m
                np.minimum.at(fm, touched, amiss)
                fmi = fm[S]
                infm = self._arange[:m] > fmi
                fm[touched] = _FAR
                prior_tag = np.where(pm, pend_tag[S], T[np.minimum(fmi, m - 1)])
                has_prior = pm | infm
            else:
                prior_tag = pend_tag[S]
                has_prior = pm
            attach = None
            stop = m
            if has_prior.any():
                attach = has_prior & (T == prior_tag)
                bad = np.flatnonzero(has_prior & ~attach)
                if len(bad):
                    stop = int(bad[0])
                if stop == 0:
                    # The stopper's set holds an unapplied miss it cannot
                    # be verified against: flush, then re-verify it.
                    self._flush_pending(
                        pend_parts, pend_sets, post_sets, post_pos,
                        c, s, t, base, offset, out,
                    )
                    pend_parts = []
                    pend_sets = []
                    post_sets = []
                    post_pos = []
                    continue
            prefix = stretch[:stop]
            vh = vhit[:stop]
            h_idx = vh.nonzero()[0]
            if len(h_idx):
                g = prefix[h_idx]
                sets = S[h_idx]
                ways = vway[h_idx]
                tags = T[h_idx]
                stamps = base + 1 + g
                self._ages_flat[sets * self.assoc + ways] = stamps
                self._mru_tag[sets] = tags
                self._mru_way[sets] = ways
                if defer_counts:
                    self._ph_segs.append([stamps, c[g], 0])
                else:
                    counts = np.bincount(c[g], minlength=self.num_cores)
                    for core in range(self.num_cores):
                        hits_stat[core] += int(counts[core])
                if out is not None:
                    out.hit[offset + g] = True
            if attach is not None:
                at = attach[:stop]
                a_idx = np.flatnonzero(at)
            else:
                at = None
                a_idx = ()
            if len(a_idx):
                ga = prefix[a_idx]
                stamps_a = base + 1 + ga
                post_sets.append(S[a_idx])
                post_pos.append(stamps_a)
                if defer_counts:
                    self._ph_segs.append([stamps_a, c[ga], 0])
                else:
                    counts = np.bincount(c[ga], minlength=self.num_cores)
                    for core in range(self.num_cores):
                        hits_stat[core] += int(counts[core])
                if out is not None:
                    out.hit[offset + ga] = True
                miss_mask = ~vh & ~at
            else:
                miss_mask = ~vh
            m_idx = np.flatnonzero(miss_mask)
            if len(m_idx):
                pend = prefix[m_idx]
                msets = S[m_idx]
                pmask[msets] = True
                pend_tag[msets] = T[m_idx]
                pend_parts.append(pend)
                pend_sets.append(msets)
            if shadows:
                sampled = np.zeros(stop, dtype=bool)
                for mask in self._shadow_masks:
                    sampled |= (S[:stop] & mask) == 0
                hit_flag = vh if at is None else vh | at
                for k in np.flatnonzero(sampled):
                    idx = int(prefix[k])
                    self._pe_pos.append(base + 1 + idx)
                    self._pe_cores.append(int(c[idx]))
                    self._pe_sets.append(int(S[k]))
                    self._pe_tags.append(int(T[k]))
                    self._pe_hits.append(bool(hit_flag[k]))
            i += stop
        self._flush_pending(
            pend_parts, pend_sets, post_sets, post_pos, c, s, t, base, offset, out
        )

    def _flush_pending(
        self, pend_parts, pend_sets, post_sets, post_pos, c, s, t, base, offset, out
    ):
        """Apply the accumulated pending misses as one ordered slice, then
        re-stamp each fill's way with its last post-fill hit position."""
        if not pend_parts:
            return
        run = pend_parts[0] if len(pend_parts) == 1 else np.concatenate(pend_parts)
        sets = pend_sets[0] if len(pend_sets) == 1 else np.concatenate(pend_sets)
        self._pmask[sets] = False
        self._batch_prism(run, c, s, t, base, offset, out)
        if post_sets:
            ps = post_sets[0] if len(post_sets) == 1 else np.concatenate(post_sets)
            pp = post_pos[0] if len(post_pos) == 1 else np.concatenate(post_pos)
            # The fill is the last event of its set within the flush, so
            # the MRU hint still points at the filled way; positions
            # ascend, so last-value-wins keeps the newest stamp.
            self._ages[ps, self._mru_way[ps]] = pp

    def _verify_hits(self, ev, c, s, t, way, base, offset, out):
        """Bulk-apply a stretch of tainted predicted hits, re-verified.

        ``ev`` holds consecutive events that were all *predicted* hits, with
        no miss between them — so between the stretch's start and each
        access, only other hits run, and tags are constant: an access is a
        true hit iff its predicted (set, way) still holds its tag *now*.
        Applies the verified prefix and returns its length; the caller
        replays the first failure (an actual miss) scalar.
        """
        S = s[ev]
        W = way[ev]
        T = t[ev]
        ok = self._tags[S, W] == T
        bad = np.nonzero(~ok)[0]
        good = len(ev) if not len(bad) else int(bad[0])
        if not good:
            return 0
        g = ev[:good]
        sets = S[:good]
        ways = W[:good]
        tags = T[:good]
        stamps = base + 1 + g
        self._ages_flat[sets * self.assoc + ways] = stamps
        self._mru_tag[sets] = tags
        self._mru_way[sets] = ways
        cores = c[g]
        counts = np.bincount(cores, minlength=self.num_cores)
        hits = self.stats.hits
        for core in range(self.num_cores):
            hits[core] += int(counts[core])
        if out is not None:
            out.hit[offset + g] = True
        if self._shadows:
            sampled = np.zeros(good, dtype=bool)
            for mask in self._shadow_masks:
                sampled |= (sets & mask) == 0
            for k in np.nonzero(sampled)[0]:
                self._pe_pos.append(int(stamps[k]))
                self._pe_cores.append(int(cores[k]))
                self._pe_sets.append(int(sets[k]))
                self._pe_tags.append(int(tags[k]))
                self._pe_hits.append(True)
        return good

    def _batch_prism(self, run, c, s, t, base, offset, out):
        """A run of clean misses under PriSM-over-LRU, in global order.

        Every miss in the run targets a distinct set (each is its set's
        first miss since the last flush), so gathers/scatters within a
        slice never collide; the interval countdown splits the run so
        boundaries fire after exactly the right miss. Shadow observations
        for the run were already queued by the walk, in position order.
        """
        S = s[run]
        C = c[run]
        T = t[run]
        POS = base + 1 + run
        ilen = self._interval_len
        k = 0
        m = len(run)
        while k < m:
            take = min(m - k, self._interval_left) if ilen else m - k
            j = k + take
            self._apply_prism_slice(
                run[k:j], S[k:j], C[k:j], T[k:j], POS[k:j], offset, out
            )
            k = j
            if ilen:
                self._interval_left -= take
                if self._interval_left == 0:
                    self._boundary(base + 1 + int(run[k - 1]))

    def _apply_prism_slice(self, run, S, C, T, POS, offset, out):
        misses = np.bincount(C, minlength=self.num_cores)
        stats_misses = self.stats.misses
        for core in range(self.num_cores):
            stats_misses[core] += int(misses[core])

        counts = self._counts
        nv = self._nvalid[S]
        nf = (nv < self.assoc).nonzero()[0]
        if len(nf):
            sets = S[nf]
            cores = C[nf]
            ways = nv[nf]
            prev = counts[sets, cores]
            for k in np.flatnonzero(prev == 0):
                self._note_core(int(sets[k]), int(cores[k]))
            counts[sets, cores] += 1
            self._nvalid[sets] += 1
            self._tags[sets, ways] = T[nf]
            self._owners[sets, ways] = cores
            self._ages[sets, ways] = POS[nf]
            self._mru_tag[sets] = T[nf]
            self._mru_way[sets] = ways
            occupancy = self.occupancy
            filled = np.bincount(cores, minlength=self.num_cores)
            for core in range(self.num_cores):
                occupancy[core] += int(filled[core])

        fu = (nv == self.assoc).nonzero()[0]
        if not len(fu):
            return
        mgr = self._mgr
        # Every set in the slice is distinct, so one replacement never
        # perturbs another's sampling/fallback decision — the vectorised
        # prefixes from all fallback rounds, and the fallback victims
        # themselves, can all be applied as one scatter at the end.
        good_parts: list = []
        target_parts: list = []
        fb: Optional[tuple] = None
        p = 0
        while p < len(fu):
            rem = fu[p:]
            self._ensure_draws(len(rem))
            draws = self._draws[self._didx : self._didx + len(rem)]
            targets = np.searchsorted(self._cum_np, draws, side="right")
            ok = counts[S[rem], targets] > 0
            bad = np.nonzero(~ok)[0]
            good = len(rem) if not len(bad) else int(bad[0])
            if good:
                good_parts.append(rem[:good])
                target_parts.append(targets[:good])
                self._didx += good
                mgr.replacements += good
            p += good
            if good < len(rem):
                # The sampled core holds no block here: the fallback draws
                # again, shifting every later draw by one — re-map the
                # remainder of the FIFO on the next loop iteration. The
                # victim way is decided scalar (it reads only this set),
                # the replacement itself joins the final scatter.
                k = int(rem[good])
                self._didx += 1
                mgr.replacements += 1
                sidx = int(S[k])
                self._note_core(sidx, int(targets[good]))
                owners = self._owners[sidx].tolist()
                ages = self._ages[sidx].tolist()
                w = self._prism_fallback(sidx, owners, ages)
                if fb is None:
                    fb = ([], [])
                fb[0].append(k)
                fb[1].append(w)
                p += 1
        if good_parts:
            sl = good_parts[0] if len(good_parts) == 1 else np.concatenate(good_parts)
            tg = target_parts[0] if len(target_parts) == 1 else np.concatenate(target_parts)
            gsets = S[sl]
            orows = self._owners[gsets]
            arows = self._ages[gsets]
            match = orows == tg[:, None]
            masked = np.where(match, arows, _FAR)
            vw = masked.argmin(axis=1)
            if fb is not None:
                fbi = np.asarray(fb[0], dtype=np.int64)
                sl = np.concatenate([sl, fbi])
                vw = np.concatenate([vw, np.asarray(fb[1], dtype=np.int64)])
        elif fb is not None:
            sl = np.asarray(fb[0], dtype=np.int64)
            vw = np.asarray(fb[1], dtype=np.int64)
        else:
            return
        self._scatter_replacements(
            S[sl], C[sl], T[sl], POS[sl], vw, run[sl], offset, out
        )

    def _scatter_replacements(self, sets, cores, tags, stamps, vw, run, offset, out):
        """Apply replacements with known victim ways as one scatter."""
        counts = self._counts
        vcores = self._owners[sets, vw]
        vtags = self._tags[sets, vw]
        prev = counts[sets, cores]
        newkey = np.flatnonzero((prev == 0) & (vcores != cores))
        for k in newkey:
            self._note_core(int(sets[k]), int(cores[k]))
        counts[sets, vcores] -= 1
        counts[sets, cores] += 1
        self._tags[sets, vw] = tags
        self._owners[sets, vw] = cores
        self._ages[sets, vw] = stamps
        self._mru_tag[sets] = tags
        self._mru_way[sets] = vw
        occupancy = self.occupancy
        evictions = self.stats.evictions
        evicted = np.bincount(vcores, minlength=self.num_cores)
        filled = np.bincount(cores, minlength=self.num_cores)
        for core in range(self.num_cores):
            occupancy[core] += int(filled[core]) - int(evicted[core])
            evictions[core] += int(evicted[core])
        if out is not None:
            at = offset + run
            out.evicted_core[at] = vcores
            out.evicted_addr[at] = (vtags << self._tag_shift) | sets

    # -- free-order chunk processing (unmanaged LRU) -------------------------

    def _chunk_free(self, c, s, t, offset, out):
        """Unmanaged LRU: no draws, duels, intervals or observers — only
        commutative counters — so tainted accesses can themselves be
        re-batched recursively instead of replayed scalar."""
        base = self._clock
        idx = None  # None = whole chunk
        c_sub, s_sub, t_sub = c, s, t
        pos_sub = None
        while True:
            n = len(c_sub)
            if n <= 48:
                for k in range(n):
                    pos = int(pos_sub[k]) if pos_sub is not None else k
                    hit_k, ecore, eaddr = self._scalar_access(
                        int(c_sub[k]),
                        int(s_sub[k]),
                        int(t_sub[k]),
                        base + 1 + pos,
                        defer=False,
                    )
                    if out is not None:
                        at = offset + pos
                        if hit_k:
                            out.hit[at] = True
                        else:
                            out.evicted_core[at] = ecore
                            out.evicted_addr[at] = eaddr
                return
            hit, way = self._predict(s_sub, t_sub)
            miss_idx, tainted = self._taint(s_sub, hit, n)
            clean_hit_mask = hit & ~tainted
            ch_idx = np.flatnonzero(clean_hit_mask)
            abs_idx = pos_sub if pos_sub is not None else self._arange[:n]
            # Stamps must be the original positions, so recursion rounds
            # keep the per-set stamp order of the original trace.
            if len(ch_idx):
                sets = s_sub[ch_idx]
                ways = way[ch_idx]
                stamps = base + 1 + abs_idx[ch_idx]
                np.maximum.at(self._ages_flat, sets * self.assoc + ways, stamps)
                rev = ch_idx[::-1]
                u_sets, u_first = np.unique(sets[::-1], return_index=True)
                last = rev[u_first]
                self._mru_tag[u_sets] = t_sub[last]
                self._mru_way[u_sets] = way[last]
                counts = np.bincount(c_sub[ch_idx], minlength=self.num_cores)
                hits = self.stats.hits
                for core in range(self.num_cores):
                    hits[core] += int(counts[core])
                if out is not None:
                    out.hit[offset + abs_idx[ch_idx]] = True
            if miss_idx is None:
                return
            cm_idx = miss_idx[~tainted[miss_idx]]
            if len(cm_idx):
                self._bulk_lru_misses(
                    s_sub[cm_idx],
                    c_sub[cm_idx],
                    t_sub[cm_idx],
                    base + 1 + abs_idx[cm_idx],
                    offset + abs_idx[cm_idx] if out is not None else None,
                    out,
                )
            ta_idx = np.flatnonzero(tainted)
            if not len(ta_idx):
                return
            c_sub = c_sub[ta_idx]
            s_sub = s_sub[ta_idx]
            t_sub = t_sub[ta_idx]
            pos_sub = abs_idx[ta_idx]

    def _bulk_lru_misses(self, sets, cores, tags, stamps, at, out):
        """All first-per-set misses of one round, distinct sets throughout."""
        misses = np.bincount(cores, minlength=self.num_cores)
        stats_misses = self.stats.misses
        for core in range(self.num_cores):
            stats_misses[core] += int(misses[core])
        nv = self._nvalid[sets]
        nf = np.flatnonzero(nv < self.assoc)
        occupancy = self.occupancy
        if len(nf):
            fs = sets[nf]
            fc = cores[nf]
            ways = nv[nf]
            self._nvalid[fs] += 1
            self._tags[fs, ways] = tags[nf]
            self._owners[fs, ways] = fc
            self._ages[fs, ways] = stamps[nf]
            self._mru_tag[fs] = tags[nf]
            self._mru_way[fs] = ways
            filled = np.bincount(fc, minlength=self.num_cores)
            for core in range(self.num_cores):
                occupancy[core] += int(filled[core])
        fu = np.flatnonzero(nv == self.assoc)
        if len(fu):
            fs = sets[fu]
            fc = cores[fu]
            arows = self._ages[fs]
            vw = arows.argmin(axis=1)
            vcores = self._owners[fs, vw]
            vtags = self._tags[fs, vw]
            self._tags[fs, vw] = tags[fu]
            self._owners[fs, vw] = fc
            self._ages[fs, vw] = stamps[fu]
            self._mru_tag[fs] = tags[fu]
            self._mru_way[fs] = vw
            evictions = self.stats.evictions
            evicted = np.bincount(vcores, minlength=self.num_cores)
            filled = np.bincount(fc, minlength=self.num_cores)
            for core in range(self.num_cores):
                occupancy[core] += int(filled[core]) - int(evicted[core])
                evictions[core] += int(evicted[core])
            if out is not None:
                out.evicted_core[at[fu]] = vcores
                out.evicted_addr[at[fu]] = (vtags << self._tag_shift) | fs
