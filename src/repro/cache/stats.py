"""Per-core and aggregate cache statistics.

Two layers of counters are kept:

- *lifetime* counters, never reset, used for end-of-run reporting, and
- *interval* counters, reset at each allocation-policy invocation, which
  provide the miss fractions ``M_i`` and the shared/stand-alone hit deltas
  the PriSM allocation policies consume.
"""

from __future__ import annotations

from typing import Dict, List

__all__ = ["CacheStats"]


class CacheStats:
    """Hit/miss/eviction counters for a shared cache with ``num_cores`` cores."""

    def __init__(self, num_cores: int) -> None:
        if num_cores < 1:
            raise ValueError(f"num_cores must be >= 1, got {num_cores}")
        self.num_cores = num_cores
        self.hits: List[int] = [0] * num_cores
        self.misses: List[int] = [0] * num_cores
        # Evictions *suffered* by a core (its block was chosen as victim).
        self.evictions: List[int] = [0] * num_cores
        self.interval_hits: List[int] = [0] * num_cores
        self.interval_misses: List[int] = [0] * num_cores
        self.interval_evictions: List[int] = [0] * num_cores

    # -- recording --------------------------------------------------------

    def record_hit(self, core: int) -> None:
        self.hits[core] += 1
        self.interval_hits[core] += 1

    def record_miss(self, core: int) -> None:
        self.misses[core] += 1
        self.interval_misses[core] += 1

    def record_eviction(self, victim_core: int) -> None:
        self.evictions[victim_core] += 1
        self.interval_evictions[victim_core] += 1

    def reset_interval(self) -> None:
        """Zero the interval counters (called after each reallocation)."""
        for counters in (self.interval_hits, self.interval_misses, self.interval_evictions):
            for core in range(self.num_cores):
                counters[core] = 0

    # -- derived queries ----------------------------------------------------

    def accesses(self, core: int) -> int:
        """Lifetime accesses issued by ``core``."""
        return self.hits[core] + self.misses[core]

    def total_misses(self) -> int:
        return sum(self.misses)

    def total_hits(self) -> int:
        return sum(self.hits)

    def miss_rate(self, core: int) -> float:
        """Lifetime miss rate of ``core`` (0 when it made no accesses)."""
        accesses = self.accesses(core)
        return self.misses[core] / accesses if accesses else 0.0

    def interval_miss_fractions(self) -> List[float]:
        """``M_i``: each core's share of this interval's misses.

        Sums to 1 whenever any miss occurred this interval; an all-zero
        interval yields a uniform distribution so that Eq. 1 stays
        well-defined.
        """
        total = sum(self.interval_misses)
        if total == 0:
            return [1.0 / self.num_cores] * self.num_cores
        return [m / total for m in self.interval_misses]

    def snapshot(self) -> Dict[str, List[int]]:
        """Copy of the lifetime counters, for reporting."""
        return {
            "hits": list(self.hits),
            "misses": list(self.misses),
            "evictions": list(self.evictions),
        }
