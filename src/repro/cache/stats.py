"""Per-core and aggregate cache statistics.

Two layers of counters are kept:

- *lifetime* counters, never reset, used for end-of-run reporting, and
- *interval* counters, reset at each allocation-policy invocation, which
  provide the miss fractions ``M_i`` and the shared/stand-alone hit deltas
  the PriSM allocation policies consume.
"""

from __future__ import annotations

from typing import Dict, List

__all__ = ["CacheStats"]


class CacheStats:
    """Hit/miss/eviction counters for a shared cache with ``num_cores`` cores.

    Only the lifetime counters are written on the access path; the interval
    counters are *derived* as lifetime-minus-baseline, where the baseline is
    snapshotted by :meth:`reset_interval`. This halves the counter updates
    per access while keeping the interval views exact.
    """

    def __init__(self, num_cores: int) -> None:
        if num_cores < 1:
            raise ValueError(f"num_cores must be >= 1, got {num_cores}")
        self.num_cores = num_cores
        self.hits: List[int] = [0] * num_cores
        self.misses: List[int] = [0] * num_cores
        # Evictions *suffered* by a core (its block was chosen as victim).
        self.evictions: List[int] = [0] * num_cores
        # Lifetime values at the start of the current interval.
        self._base_hits: List[int] = [0] * num_cores
        self._base_misses: List[int] = [0] * num_cores
        self._base_evictions: List[int] = [0] * num_cores

    # -- interval views ----------------------------------------------------

    @property
    def interval_hits(self) -> List[int]:
        return [v - b for v, b in zip(self.hits, self._base_hits)]

    @interval_hits.setter
    def interval_hits(self, values: List[int]) -> None:
        self._base_hits = [v - x for v, x in zip(self.hits, values)]

    @property
    def interval_misses(self) -> List[int]:
        return [v - b for v, b in zip(self.misses, self._base_misses)]

    @interval_misses.setter
    def interval_misses(self, values: List[int]) -> None:
        self._base_misses = [v - x for v, x in zip(self.misses, values)]

    @property
    def interval_evictions(self) -> List[int]:
        return [v - b for v, b in zip(self.evictions, self._base_evictions)]

    @interval_evictions.setter
    def interval_evictions(self, values: List[int]) -> None:
        self._base_evictions = [v - x for v, x in zip(self.evictions, values)]

    # -- recording --------------------------------------------------------

    def record_hit(self, core: int) -> None:
        self.hits[core] += 1

    def record_miss(self, core: int) -> None:
        self.misses[core] += 1

    def record_eviction(self, victim_core: int) -> None:
        self.evictions[victim_core] += 1

    def reset_interval(self) -> None:
        """Re-baseline the interval counters (called after each reallocation)."""
        self._base_hits[:] = self.hits
        self._base_misses[:] = self.misses
        self._base_evictions[:] = self.evictions

    # -- derived queries ----------------------------------------------------

    def accesses(self, core: int) -> int:
        """Lifetime accesses issued by ``core``."""
        return self.hits[core] + self.misses[core]

    def total_misses(self) -> int:
        return sum(self.misses)

    def total_hits(self) -> int:
        return sum(self.hits)

    def miss_rate(self, core: int) -> float:
        """Lifetime miss rate of ``core`` (0 when it made no accesses)."""
        accesses = self.accesses(core)
        return self.misses[core] / accesses if accesses else 0.0

    def interval_miss_fractions(self) -> List[float]:
        """``M_i``: each core's share of this interval's misses.

        Sums to 1 whenever any miss occurred this interval; an all-zero
        interval yields a uniform distribution so that Eq. 1 stays
        well-defined.
        """
        total = sum(self.interval_misses)
        if total == 0:
            return [1.0 / self.num_cores] * self.num_cores
        return [m / total for m in self.interval_misses]

    def snapshot(self) -> Dict[str, List[int]]:
        """Copy of the lifetime counters, for reporting."""
        return {
            "hits": list(self.hits),
            "misses": list(self.misses),
            "evictions": list(self.evictions),
        }
