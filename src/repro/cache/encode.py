"""One-shot trace pre-encoding: block addresses -> (set index, tag) arrays.

Both cache backends consume the same encoded form: the classic engine's
:meth:`~repro.cache.cache.SharedCache.access_many` saves the per-access
geometry arithmetic, and the vector engine
(:class:`~repro.cache.vector.VectorCache`) requires whole-trace arrays to
batch its set lookups at all. Encoding is a pair of vectorised integer
ops (mask + shift), so a multi-million-access trace encodes in
milliseconds and the arrays can be replayed any number of times.

The arithmetic is exactly :class:`~repro.cache.geometry.CacheGeometry`'s
``set_index``/``tag`` (and the classic engine's hot-path copies of them):
``set_index = addr & (num_sets - 1)``, ``tag = addr >> set_bits``.
"""

from __future__ import annotations

from typing import NamedTuple, Sequence, Tuple

import numpy as np

from repro.cache.geometry import CacheGeometry

__all__ = ["EncodedTrace", "encode_accesses", "encode_trace"]


class EncodedTrace(NamedTuple):
    """A trace pre-encoded for batch replay.

    Attributes:
        cores: issuing core per access (``int64``).
        set_indices: target set per access (``int64``).
        tags: address tag per access (``int64``).
    """

    cores: np.ndarray
    set_indices: np.ndarray
    tags: np.ndarray

    def __len__(self) -> int:
        return len(self.cores)


def encode_accesses(
    cores: Sequence[int],
    addrs: Sequence[int],
    geometry: CacheGeometry,
) -> EncodedTrace:
    """Encode parallel ``cores``/``addrs`` sequences against ``geometry``.

    Args:
        cores: issuing core ids (anything ``np.asarray`` accepts).
        addrs: block addresses (non-negative; the byte offset is already
            stripped throughout the simulator).
        geometry: the cache the trace will be replayed against.

    Returns:
        An :class:`EncodedTrace` of equal-length ``int64`` arrays.

    Raises:
        ValueError: on length mismatch or negative addresses.
    """
    core_arr = np.ascontiguousarray(cores, dtype=np.int64)
    addr_arr = np.ascontiguousarray(addrs, dtype=np.int64)
    if core_arr.shape != addr_arr.shape or core_arr.ndim != 1:
        raise ValueError(
            f"cores and addrs must be equal-length 1-D sequences, got "
            f"shapes {core_arr.shape} and {addr_arr.shape}"
        )
    if len(addr_arr) and int(addr_arr.min()) < 0:
        raise ValueError("block addresses must be non-negative")
    set_mask = geometry.num_sets - 1
    tag_shift = set_mask.bit_length()
    return EncodedTrace(
        cores=core_arr,
        set_indices=addr_arr & set_mask,
        tags=addr_arr >> tag_shift,
    )


def encode_trace(
    stream: Sequence[Tuple[int, int]],
    geometry: CacheGeometry,
) -> EncodedTrace:
    """Encode a ``[(core, block_addr), ...]`` stream (the test/bench shape)."""
    if len(stream) == 0:
        empty = np.empty(0, dtype=np.int64)
        return EncodedTrace(empty, empty.copy(), empty.copy())
    pairs = np.asarray(stream, dtype=np.int64)
    return encode_accesses(pairs[:, 0], pairs[:, 1], geometry)
