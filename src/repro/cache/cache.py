"""The shared last-level cache.

:class:`SharedCache` owns the sets, the per-core occupancy counters the
PriSM analytical model reads (``C_i``), the statistics, and the interval
machinery: the allocation policies in this repo recompute their targets
every ``W`` misses, where ``W`` is chosen by the attached management
scheme (the paper's default is ``W = N``, one interval per cache's worth
of misses).

Division of labour on a miss:

- the **scheme** (:mod:`repro.partitioning` / :mod:`repro.core`) picks the
  victim block and the insertion position — this is where way-partitioning
  quotas, PIPP's insertion points or PriSM's core-selection live;
- the **replacement policy** (:mod:`repro.cache.replacement`) supplies the
  baseline eviction-preference order and promotion behaviour the scheme
  builds on.

A cache with no scheme attached behaves exactly like an unmanaged cache
under its baseline policy.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional, Sequence

from repro.cache.cacheset import CacheSet
from repro.cache.geometry import CacheGeometry
from repro.cache.replacement.base import ReplacementPolicy
from repro.cache.replacement.lru import LRUPolicy
from repro.cache.stats import CacheStats

__all__ = ["AccessResult", "SharedCache"]


class AccessResult(NamedTuple):
    """Outcome of one cache access."""

    hit: bool
    set_index: int
    evicted_core: int  # -1 when nothing was evicted
    evicted_addr: int = -1  # block address of the victim (-1 if none)


class SharedCache:
    """A set-associative cache shared by ``num_cores`` cores.

    Args:
        geometry: size/associativity description.
        num_cores: number of sharing cores (block owners).
        policy: baseline replacement policy; defaults to true LRU.
        scheme: management scheme; ``None`` means unmanaged.

    Attributes:
        occupancy: per-core count of blocks currently resident.
        stats: hit/miss/eviction counters.
        monitors: observers probed on every access (shadow tags, tracers).
    """

    def __init__(
        self,
        geometry: CacheGeometry,
        num_cores: int,
        policy: Optional[ReplacementPolicy] = None,
        scheme=None,
    ) -> None:
        if num_cores < 1:
            raise ValueError(f"num_cores must be >= 1, got {num_cores}")
        self.geometry = geometry
        self.num_cores = num_cores
        # Hot-path copies of the geometry arithmetic (num_sets is a derived
        # property; the access loop runs millions of times).
        self._set_mask = geometry.num_sets - 1
        self._tag_shift = self._set_mask.bit_length()
        self.policy = policy if policy is not None else LRUPolicy()
        self.sets: List[CacheSet] = [
            CacheSet(i, geometry.assoc) for i in range(geometry.num_sets)
        ]
        self.occupancy: List[int] = [0] * num_cores
        self.stats = CacheStats(num_cores)
        self.monitors: list = []
        self.scheme = None
        self.interval_miss_count = 0
        self.intervals_completed = 0
        self.policy.bind(self)
        if scheme is not None:
            self.set_scheme(scheme)

    # -- wiring ------------------------------------------------------------

    def set_scheme(self, scheme) -> None:
        """Attach a management scheme (calls ``scheme.attach(self)``)."""
        self.scheme = scheme
        scheme.attach(self)

    def add_monitor(self, monitor) -> None:
        """Register an access observer with an ``observe(core, set, tag, hit)`` method."""
        self.monitors.append(monitor)

    # -- derived state -------------------------------------------------------

    def occupancy_fractions(self) -> List[float]:
        """``C_i``: fraction of all cache blocks owned by each core."""
        n = self.geometry.num_blocks
        return [occ / n for occ in self.occupancy]

    def valid_blocks(self) -> int:
        """Total valid blocks (equals ``sum(occupancy)``)."""
        return sum(self.occupancy)

    # -- the access path -------------------------------------------------------

    def access(self, core: int, block_addr: int) -> AccessResult:
        """Simulate one access by ``core`` to ``block_addr``.

        Returns:
            An :class:`AccessResult`; ``evicted_core`` identifies whose block
            was displaced (or -1 for a fill into an empty way / a hit).
        """
        set_index = block_addr & self._set_mask
        tag = block_addr >> self._tag_shift
        cset = self.sets[set_index]
        policy = self.policy
        scheme = self.scheme

        policy.notify_access(cset)
        block = cset.lookup(tag)
        hit = block is not None
        for monitor in self.monitors:
            monitor.observe(core, set_index, tag, hit)

        if hit:
            self.stats.record_hit(core)
            if scheme is not None:
                scheme.on_hit(cset, block, core)
            else:
                policy.on_hit(cset, block, core)
            return AccessResult(True, set_index, -1)

        self.stats.record_miss(core)
        policy.record_miss(cset, core)

        evicted_core = -1
        evicted_addr = -1
        if cset.full:
            if scheme is not None:
                victim = scheme.select_victim(cset, core)
            else:
                victim = policy.victim(cset)
            evicted_core = victim.core
            evicted_addr = (victim.tag << self._tag_shift) | set_index
            self.occupancy[evicted_core] -= 1
            self.stats.record_eviction(evicted_core)
            cset.evict(victim)

        if scheme is not None:
            position = scheme.insertion_position(cset, core)
        else:
            position = policy.insertion_position(cset, core)
        new_block = cset.fill(tag, core, position)
        self.occupancy[core] += 1
        policy.on_fill(cset, new_block, core)
        if scheme is not None:
            scheme.on_fill(cset, new_block, core)

        self._tick_interval()
        return AccessResult(False, set_index, evicted_core, evicted_addr)

    def _tick_interval(self) -> None:
        """Advance the miss-interval clock and fire the scheme callback."""
        scheme = self.scheme
        if scheme is None:
            return
        interval_len = getattr(scheme, "interval_len", 0)
        if not interval_len:
            return
        self.interval_miss_count += 1
        if self.interval_miss_count < interval_len:
            return
        scheme.end_interval(self)
        self.stats.reset_interval()
        for monitor in self.monitors:
            end_interval = getattr(monitor, "end_interval", None)
            if end_interval is not None:
                end_interval()
        self.interval_miss_count = 0
        self.intervals_completed += 1

    # -- integrity checks (used by tests and assertions) ------------------------

    def scan_occupancy(self) -> List[int]:
        """Recompute per-core occupancy by scanning every set (slow)."""
        counts = [0] * self.num_cores
        for cset in self.sets:
            for block in cset.blocks:
                counts[block.core] += 1
        return counts
