"""The shared last-level cache.

:class:`SharedCache` owns the sets, the per-core occupancy counters the
PriSM analytical model reads (``C_i``), the statistics, and the interval
machinery: the allocation policies in this repo recompute their targets
every ``W`` misses, where ``W`` is chosen by the attached management
scheme (the paper's default is ``W = N``, one interval per cache's worth
of misses).

Division of labour on a miss:

- the **scheme** (:mod:`repro.partitioning` / :mod:`repro.core`) picks the
  victim block and the insertion position — this is where way-partitioning
  quotas, PIPP's insertion points or PriSM's core-selection live;
- the **replacement policy** (:mod:`repro.cache.replacement`) supplies the
  baseline eviction-preference order and promotion behaviour the scheme
  builds on.

A cache with no scheme attached behaves exactly like an unmanaged cache
under its baseline policy.
"""

from __future__ import annotations

from time import perf_counter
from typing import List, NamedTuple, Optional, Sequence, Tuple

from repro.cache.cacheset import CacheSet
from repro.cache.geometry import CacheGeometry
from repro.cache.replacement.base import ReplacementPolicy
from repro.cache.replacement.lru import LRUPolicy
from repro.cache.stats import CacheStats

__all__ = ["AccessResult", "SharedCache"]


def _active(callback):
    """``callback`` itself, or ``None`` when it is a tagged no-op.

    Methods marked ``_hot_noop = True`` on their defining class are base-class
    stubs; eliding the call entirely keeps them off the per-access hot path.
    Plain callables (e.g. per-instance closures) are always active.
    """
    func = getattr(callback, "__func__", callback)
    if getattr(func, "_hot_noop", False):
        return None
    return callback


class AccessResult(NamedTuple):
    """Outcome of one cache access."""

    hit: bool
    set_index: int
    evicted_core: int  # -1 when nothing was evicted
    evicted_addr: int = -1  # block address of the victim (-1 if none)


class SharedCache:
    """A set-associative cache shared by ``num_cores`` cores.

    Args:
        geometry: size/associativity description.
        num_cores: number of *accounting owners* — the width of every
            per-core array the management machinery reads (occupancy,
            stats, ``E_i``/``T_i``). Without ``core_map`` this is simply
            the number of sharing cores.
        policy: baseline replacement policy; defaults to true LRU.
        scheme: management scheme; ``None`` means unmanaged.
        core_map: optional cluster map for many-core scale-out
            (:mod:`repro.clustering`): ``core_map[real_core]`` is the
            accounting group the core's blocks are charged to. Its length
            is the real core count; its values must lie in
            ``[0, num_cores)``. Every access is translated at entry, so
            all downstream accounting — occupancy, stats, shadow tags,
            PriSM's E/T — runs at cluster granularity.
        track_sharers: maintain per-block sharer bitmasks (shared-data
            workloads): a fill seeds ``block.sharers`` with the filling
            owner's bit, every hit ORs the hitting owner's bit in.
            Occupancy stays charged to the accounting owner (conservation
            is preserved); the sharer set is observational.

    Attributes:
        occupancy: per-accounting-owner count of blocks currently resident.
        stats: hit/miss/eviction counters (accounting-owner indexed).
        monitors: observers probed on every access (shadow tags, tracers).
        real_num_cores: number of real cores issuing accesses
            (``len(core_map)``, or ``num_cores`` when unmapped).
    """

    # Slotted: the access loop is ~20 attribute loads per call, and slot
    # descriptors resolve faster than instance-dict lookups. Subclasses
    # (e.g. SetPartitionedCache) may still add their own attributes — they
    # get a __dict__ of their own.
    __slots__ = (
        "geometry",
        "num_cores",
        "real_num_cores",
        "_core_map",
        "track_sharers",
        "_set_mask",
        "_tag_shift",
        "policy",
        "sets",
        "occupancy",
        "stats",
        "_hits",
        "_misses",
        "_evictions",
        "_hit_results",
        "monitors",
        "scheme",
        "telemetry",
        "intervals_completed",
        "_interval_len",
        "_interval_left",
        "_notify_access",
        "_record_miss",
        "_policy_on_fill",
        "_scheme_on_fill",
        "_on_hit",
        "_insert_fill",
        "_replace_fill",
        "_select_victim",
        "_lru_victim",
        "_observers",
        "_observers_at",
        "_interval_monitors",
        "_hot",
    )

    def __init__(
        self,
        geometry: CacheGeometry,
        num_cores: int,
        policy: Optional[ReplacementPolicy] = None,
        scheme=None,
        core_map: Optional[Sequence[int]] = None,
        track_sharers: bool = False,
    ) -> None:
        if num_cores < 1:
            raise ValueError(f"num_cores must be >= 1, got {num_cores}")
        if core_map is not None:
            core_map = list(core_map)
            if not core_map:
                raise ValueError("core_map must map at least one core")
            bad = [g for g in core_map if not 0 <= g < num_cores]
            if bad:
                raise ValueError(
                    f"core_map groups must lie in [0, {num_cores}), got {bad}"
                )
        self.geometry = geometry
        self.num_cores = num_cores
        self._core_map = core_map
        self.real_num_cores = len(core_map) if core_map is not None else num_cores
        self.track_sharers = bool(track_sharers)
        # Hot-path copies of the geometry arithmetic (num_sets is a derived
        # property; the access loop runs millions of times).
        self._set_mask = geometry.num_sets - 1
        self._tag_shift = self._set_mask.bit_length()
        self.policy = policy if policy is not None else LRUPolicy()
        self.sets: List[CacheSet] = [
            CacheSet(i, geometry.assoc) for i in range(geometry.num_sets)
        ]
        self.occupancy: List[int] = [0] * num_cores
        self.stats = CacheStats(num_cores)
        # Direct references to the lifetime counter lists: CacheStats never
        # reassigns them (interval views are derived), so the access loop can
        # skip the two-attribute hop on every hit/miss/eviction.
        self._hits = self.stats.hits
        self._misses = self.stats.misses
        self._evictions = self.stats.evictions
        # AccessResult is immutable and a hit's fields depend only on the
        # set index, so hits return pre-built results.
        self._hit_results = [
            AccessResult(True, i, -1) for i in range(geometry.num_sets)
        ]
        self.monitors: list = []
        self.scheme = None
        self.telemetry = None
        self.intervals_completed = 0
        self._interval_len = 0
        self._interval_left = 0
        self.policy.bind(self)
        self._rewire()
        if scheme is not None:
            self.set_scheme(scheme)

    # -- wiring ------------------------------------------------------------

    def _rewire(self) -> None:
        """Re-resolve the per-access callbacks.

        The access loop runs millions of times; resolving which hooks are
        real (vs. ``_hot_noop``-tagged base-class stubs) once per wiring
        change keeps dead calls out of it entirely.
        """
        policy = self.policy
        scheme = self.scheme
        self._notify_access = _active(policy.notify_access)
        self._record_miss = _active(policy.record_miss)
        self._policy_on_fill = _active(policy.on_fill)
        self._scheme_on_fill = _active(scheme.on_fill) if scheme is not None else None
        if scheme is None:
            self._on_hit = policy.on_hit
            self._insert_fill = policy.insert_fill
            self._replace_fill = policy.replace_fill
            self._select_victim = None
        else:
            # Bound methods resolved by ManagementScheme.attach(): the
            # policy's own hooks wherever the scheme does not override them.
            self._on_hit = scheme._resolved_on_hit
            self._insert_fill = scheme._resolved_insert
            self._replace_fill = scheme._resolved_replace
            self._select_victim = scheme._resolved_select
        # When no scheme overrides victim selection and the policy's order is
        # the recency order, the victim is always the LRU-end block — inlined
        # into the access loop as a direct linked-list peek.
        self._lru_victim = self._select_victim is None and policy.recency_ordered
        # Observer dispatch is per set: a sampling monitor (one exposing
        # is_sampled) is only wired into the sets it samples, so unsampled
        # sets skip its observe call entirely.
        active = [m for m in self.monitors if _active(m.observe) is not None]
        self._observers = tuple(m.observe for m in active)
        if active:
            self._observers_at = [
                tuple(
                    m.observe
                    for m in active
                    if not hasattr(m, "is_sampled") or m.is_sampled(s)
                )
                for s in range(self.geometry.num_sets)
            ]
        else:
            self._observers_at = None
        self._interval_monitors = tuple(
            m.end_interval
            for m in self.monitors
            if getattr(m, "end_interval", None) is not None
        )
        # Everything access() reads that is fixed between wiring changes,
        # packed into one tuple: a single attribute load plus an unpack
        # replaces ~18 attribute loads per access. Every pinned container
        # is mutated in place only (occupancy, stat lists, sets).
        self._hot = (
            self._set_mask,
            self._tag_shift,
            self.sets,
            self._hits,
            self._misses,
            self._evictions,
            self._hit_results,
            self._notify_access,
            self._observers_at,
            self._on_hit,
            self._record_miss,
            self._select_victim,
            self._lru_victim,
            self._insert_fill,
            self._replace_fill,
            self._policy_on_fill,
            self._scheme_on_fill,
            self.occupancy,
            policy.victim,
            self._interval_len,
            self._core_map,
            self.track_sharers,
        )

    def set_scheme(self, scheme) -> None:
        """Attach a management scheme (calls ``scheme.attach(self)``)."""
        self.scheme = scheme
        scheme.attach(self)
        # Latched once: schemes fix interval_len during construction/attach.
        self._interval_len = getattr(scheme, "interval_len", 0) or 0
        self._interval_left = self._interval_len
        self._rewire()

    def set_telemetry(self, recorder) -> None:
        """Attach a telemetry recorder (fired at each interval boundary).

        Off the hot path entirely: the recorder is consulted only inside
        :meth:`_end_interval`, so an unattached cache pays nothing and an
        attached one pays only at allocation-interval granularity.
        """
        self.telemetry = recorder

    def add_monitor(self, monitor) -> None:
        """Register an access observer with an ``observe(core, set, tag, hit)`` method."""
        self.monitors.append(monitor)
        self._rewire()

    # -- derived state -------------------------------------------------------

    @property
    def interval_miss_count(self) -> int:
        """Misses so far in the current allocation interval."""
        interval_len = self._interval_len
        return (interval_len - self._interval_left) if interval_len else 0

    @interval_miss_count.setter
    def interval_miss_count(self, value: int) -> None:
        self._interval_left = self._interval_len - value

    def occupancy_fractions(self) -> List[float]:
        """``C_i``: fraction of all cache blocks owned by each core."""
        n = self.geometry.num_blocks
        return [occ / n for occ in self.occupancy]

    def valid_blocks(self) -> int:
        """Total valid blocks (equals ``sum(occupancy)``)."""
        return sum(self.occupancy)

    # -- the access path -------------------------------------------------------

    def access(self, core: int, block_addr: int) -> AccessResult:
        """Simulate one access by ``core`` to ``block_addr``.

        Returns:
            An :class:`AccessResult`; ``evicted_core`` identifies whose block
            was displaced (or -1 for a fill into an empty way / a hit).
        """
        (
            set_mask,
            tag_shift,
            sets,
            hits_l,
            misses_l,
            evictions_l,
            hit_results,
            notify_access,
            observers_at,
            on_hit,
            record_miss,
            select_victim,
            lru_victim,
            insert_fill,
            replace_fill,
            policy_on_fill,
            scheme_on_fill,
            occupancy,
            policy_victim,
            interval_len,
            core_map,
            track_sharers,
        ) = self._hot
        real_core = core
        if core_map is not None:
            core = core_map[core]
        set_index = block_addr & set_mask
        tag = block_addr >> tag_shift
        cset = sets[set_index]

        if notify_access is not None:
            notify_access(cset)
        block = cset.lookup_tag(tag)
        hit = block is not None
        if observers_at is not None:
            for observe in observers_at[set_index]:
                observe(core, set_index, tag, hit)

        if hit:
            hits_l[core] += 1
            if track_sharers:
                block.sharers |= 1 << core
            on_hit(cset, block, core)
            return hit_results[set_index]

        misses_l[core] += 1
        if record_miss is not None:
            record_miss(cset, core)

        evicted_core = -1
        evicted_addr = -1
        if not cset._free:
            if lru_victim:
                victim = cset._tail.prev
            elif select_victim is not None:
                victim = select_victim(cset, core)
            else:
                victim = policy_victim(cset)
            evicted_core = victim.core
            evicted_addr = (victim.tag << tag_shift) | set_index
            occupancy[evicted_core] -= 1
            evictions_l[evicted_core] += 1
            new_block = replace_fill(cset, victim, tag, core)
        else:
            new_block = insert_fill(cset, tag, core)
        occupancy[core] += 1
        if core_map is not None:
            new_block.filler = real_core
        if track_sharers:
            new_block.sharers = 1 << core
        if policy_on_fill is not None:
            policy_on_fill(cset, new_block, core)
        if scheme_on_fill is not None:
            scheme_on_fill(cset, new_block, core)

        if interval_len:
            # Countdown form: one read-modify-write per miss.
            left = self._interval_left - 1
            if left:
                self._interval_left = left
            else:
                self._end_interval()
        # NamedTuple.__new__ goes through _make-style kwargs plumbing;
        # building the tuple directly skips that on the dominant miss path.
        return tuple.__new__(
            AccessResult, (False, set_index, evicted_core, evicted_addr)
        )

    def access_many(self, cores, addrs=None, collect: bool = False):
        """Replay many accesses through the classic engine.

        Same contract as :meth:`repro.cache.vector.VectorCache.access_many`:
        both backends consume the same pre-encoded stream, so a driver can
        switch engines without re-encoding. The classic engine still
        processes one access at a time, but the batch loop sheds the
        per-call overhead (one ``_hot`` unpack and the geometry arithmetic
        per batch instead of per access). Wiring must not change
        mid-batch — exactly the assumption ``access`` already makes within
        one call.

        Args:
            cores: an :class:`~repro.cache.encode.EncodedTrace`, or the
                per-access core ids.
            addrs: block addresses (required unless ``cores`` is already
                an encoded trace).
            collect: build a :class:`~repro.cache.vector.BatchResults`;
                leave off on throughput-critical replays.

        Returns:
            A ``BatchResults`` when ``collect``, else ``None``.
        """
        from repro.cache.encode import EncodedTrace, encode_accesses

        if isinstance(cores, EncodedTrace):
            trace = cores
        else:
            if addrs is None:
                raise TypeError("access_many needs addrs unless given an EncodedTrace")
            trace = encode_accesses(cores, addrs, self.geometry)
        n = len(trace)
        hit_out = ec_out = ea_out = None
        if collect:
            hit_out = [False] * n
            ec_out = [-1] * n
            ea_out = [-1] * n
        (
            _set_mask,
            tag_shift,
            sets,
            hits_l,
            misses_l,
            evictions_l,
            _hit_results,
            notify_access,
            observers_at,
            on_hit,
            record_miss,
            select_victim,
            lru_victim,
            insert_fill,
            replace_fill,
            policy_on_fill,
            scheme_on_fill,
            occupancy,
            policy_victim,
            interval_len,
            core_map,
            track_sharers,
        ) = self._hot
        # Plain-int lists iterate faster than numpy scalars in this loop.
        cores_l = trace.cores.tolist()
        sets_l = trace.set_indices.tolist()
        tags_l = trace.tags.tolist()
        for i in range(n):
            real_core = core = cores_l[i]
            if core_map is not None:
                core = core_map[core]
            set_index = sets_l[i]
            tag = tags_l[i]
            cset = sets[set_index]
            if notify_access is not None:
                notify_access(cset)
            block = cset.lookup_tag(tag)
            hit = block is not None
            if observers_at is not None:
                for observe in observers_at[set_index]:
                    observe(core, set_index, tag, hit)
            if hit:
                hits_l[core] += 1
                if track_sharers:
                    block.sharers |= 1 << core
                on_hit(cset, block, core)
                if collect:
                    hit_out[i] = True
                continue
            misses_l[core] += 1
            if record_miss is not None:
                record_miss(cset, core)
            if not cset._free:
                if lru_victim:
                    victim = cset._tail.prev
                elif select_victim is not None:
                    victim = select_victim(cset, core)
                else:
                    victim = policy_victim(cset)
                evicted_core = victim.core
                occupancy[evicted_core] -= 1
                evictions_l[evicted_core] += 1
                if collect:
                    ec_out[i] = evicted_core
                    ea_out[i] = (victim.tag << tag_shift) | set_index
                new_block = replace_fill(cset, victim, tag, core)
            else:
                new_block = insert_fill(cset, tag, core)
            occupancy[core] += 1
            if core_map is not None:
                new_block.filler = real_core
            if track_sharers:
                new_block.sharers = 1 << core
            if policy_on_fill is not None:
                policy_on_fill(cset, new_block, core)
            if scheme_on_fill is not None:
                scheme_on_fill(cset, new_block, core)
            if interval_len:
                left = self._interval_left - 1
                if left:
                    self._interval_left = left
                else:
                    self._end_interval()
        if not collect:
            return None
        import numpy as np

        from repro.cache.vector import BatchResults

        return BatchResults(
            np.asarray(hit_out, dtype=bool),
            trace.set_indices,
            np.asarray(ec_out, dtype=np.int64),
            np.asarray(ea_out, dtype=np.int64),
        )

    def _end_interval(self) -> None:
        """Fire the allocation-policy interval: scheme first, then resets.

        The telemetry hook sits between the scheme call and the resets:
        the scheme has just installed its new ``E``/``T``, and the interval
        counter views (and the system's interval perf snapshots, rolled by
        the monitors below) are still live.
        """
        telemetry = self.telemetry
        if telemetry is None:
            self.scheme.end_interval(self)
        else:
            start = perf_counter()
            self.scheme.end_interval(self)
            telemetry.note_alloc_seconds(perf_counter() - start)
            telemetry.record_interval(self)
        self.stats.reset_interval()
        for end_interval in self._interval_monitors:
            end_interval()
        self._interval_left = self._interval_len
        self.intervals_completed += 1

    # -- integrity checks (used by tests and assertions) ------------------------

    def scan_occupancy(self) -> List[int]:
        """Recompute per-owner occupancy by scanning every set (slow)."""
        counts = [0] * self.num_cores
        for cset in self.sets:
            for block in cset.blocks:
                counts[block.core] += 1
        return counts

    def group_of(self, core: int) -> int:
        """Accounting owner a real core's fills are charged to."""
        return self._core_map[core] if self._core_map is not None else core

    @property
    def core_map(self) -> Optional[List[int]]:
        """The cluster map in force (``None`` when unclustered)."""
        return list(self._core_map) if self._core_map is not None else None

    def scan_charges(self) -> List[int]:
        """Per-real-core block charges, recounted from block fillers (slow).

        Only meaningful with a ``core_map``: each resident block is
        attributed to the real core that filled it. The cluster-conservation
        invariant checks that these sum, group by group, to ``occupancy``.
        """
        counts = [0] * self.real_num_cores
        for cset in self.sets:
            for block in cset.blocks:
                counts[block.filler] += 1
        return counts

    def scan_sharers(self) -> List[Tuple[int, int, int, int]]:
        """Sharer state of every resident block, in a comparable shape.

        Returns sorted ``(set_index, tag, accounting_owner, sharers)``
        tuples — the zero-epsilon differential suite compares this
        across engines when ``track_sharers`` is on.
        """
        rows = []
        for cset in self.sets:
            for block in cset.blocks:
                rows.append((cset.index, block.tag, block.core, block.sharers))
        rows.sort()
        return rows
