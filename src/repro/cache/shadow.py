"""Sampled per-core shadow tags (a.k.a. auxiliary tag directory / UMON).

For each core, the monitor maintains what the cache contents *would be* if
that core had the whole cache to itself, but only for a sampled subset of
sets (dynamic set sampling [14]; the paper samples 1/32 of sets). Per-
recency-position hit counters make the same structure serve two masters:

- PriSM's allocation policies need ``StandAloneHits`` and the shadow-tag
  miss counts (Algorithms 1 and 2),
- UCP's lookahead allocation needs the full utility curve
  ``hits(core, ways)`` — the prefix sums of the position counters.

The monitor also counts each core's *shared* hits and misses restricted to
the same sampled sets, so stand-alone and shared figures are directly
comparable (same sample, same scale).
"""

from __future__ import annotations

from typing import Dict, List

__all__ = ["ShadowTagMonitor"]


class ShadowTagMonitor:
    """Per-core stand-alone cache emulation on sampled sets.

    Args:
        num_cores: number of cores sharing the cache.
        num_sets: number of sets in the monitored cache.
        assoc: associativity of the shadow arrays (defaults to the cache's).
        sample_shift: sample sets whose index is 0 mod ``2**sample_shift``.
            ``sample_shift=3`` samples 1/8 of sets (the scaled default per
            DESIGN.md; the paper's 1/32 is ``sample_shift=5``). Clamped so
            at least two sets are sampled on very-high-associativity
            (few-set) caches like Fig. 1(b)'s 256-way configuration.
    """

    def __init__(self, num_cores: int, num_sets: int, assoc: int, sample_shift: int = 3) -> None:
        if sample_shift < 0:
            raise ValueError(f"sample_shift must be >= 0, got {sample_shift}")
        if num_sets < 1:
            raise ValueError(f"num_sets must be >= 1, got {num_sets}")
        self.num_cores = num_cores
        self.num_sets = num_sets
        self.assoc = assoc
        while num_sets <= (1 << sample_shift) and sample_shift > 0:
            sample_shift -= 1
        self.sample_mask = (1 << sample_shift) - 1
        # _tags[core][set_index] -> (stack, members): the stack is a list of
        # tags, MRU first; members mirrors it as a set so the frequent miss
        # case is an O(1) probe instead of an O(assoc) list scan. One dict
        # holds both, pre-populated for every sampled set so the observe
        # path is a single unconditional subscript.
        self._tags: List[Dict[int, tuple]] = [
            {s: ([], set()) for s in range(0, num_sets, self.sample_mask + 1)}
            for _ in range(num_cores)
        ]
        self._zero_row: List[int] = [0] * assoc
        # Interval counters.
        self.position_hits: List[List[int]] = [[0] * assoc for _ in range(num_cores)]
        self.shadow_misses: List[int] = [0] * num_cores
        self.shared_hits: List[int] = [0] * num_cores
        self.shared_misses: List[int] = [0] * num_cores
        # Lifetime totals folded in at each interval end; the lifetime_*
        # properties add the live interval so reads stay exact without the
        # per-access increments.
        self._lifetime_hits: List[int] = [0] * num_cores
        self._lifetime_misses: List[int] = [0] * num_cores
        #: Specialised per-instance observe (shadows no class method; built
        #: last so every pinned structure above exists).
        self.observe = self._build_observe()

    @property
    def sample_ratio(self) -> int:
        """Denominator of the sampling fraction (e.g. 8 for 1/8)."""
        return self.sample_mask + 1

    def is_sampled(self, set_index: int) -> bool:
        """Whether ``set_index`` belongs to the sampled subset."""
        return (set_index & self.sample_mask) == 0

    # -- observation -------------------------------------------------------

    def _build_observe(self):
        """Build the per-instance ``observe`` with its state pinned.

        The counters and shadow arrays are mutated in place everywhere (see
        :meth:`end_interval`), so pinning them as default arguments is safe
        and turns every per-access attribute chain into a LOAD_FAST.
        """

        def observe(
            core: int,
            set_index: int,
            tag: int,
            shared_hit: bool,
            _mask=self.sample_mask,
            _tags=self._tags,
            _shared_hits=self.shared_hits,
            _shared_misses=self.shared_misses,
            _position_hits=self.position_hits,
            _shadow_misses=self.shadow_misses,
            _assoc=self.assoc,
        ) -> None:
            """Record one access by ``core``; no-op for unsampled sets."""
            if set_index & _mask:
                return
            if shared_hit:
                _shared_hits[core] += 1
            else:
                _shared_misses[core] += 1
            stack, members = _tags[core][set_index]
            if tag in members:
                if stack[0] == tag:
                    # MRU re-reference: the common hit needs no list churn.
                    _position_hits[core][0] += 1
                    return
                position = stack.index(tag)
                _position_hits[core][position] += 1
                del stack[position]
            else:
                _shadow_misses[core] += 1
                if len(stack) >= _assoc:
                    members.discard(stack.pop())
                members.add(tag)
            stack.insert(0, tag)

        return observe

    # -- queries -------------------------------------------------------------

    @property
    def lifetime_shadow_hits(self) -> List[int]:
        """Per-core stand-alone hits over the whole run (never reset)."""
        return [
            base + sum(row)
            for base, row in zip(self._lifetime_hits, self.position_hits)
        ]

    @property
    def lifetime_shadow_misses(self) -> List[int]:
        """Per-core stand-alone misses over the whole run (never reset)."""
        return [
            base + cur for base, cur in zip(self._lifetime_misses, self.shadow_misses)
        ]

    def standalone_hits(self, core: int) -> int:
        """Interval stand-alone hits of ``core`` on the sampled sets."""
        return sum(self.position_hits[core])

    def standalone_misses(self, core: int) -> int:
        """Interval stand-alone misses of ``core`` on the sampled sets."""
        return self.shadow_misses[core]

    def hits_with_ways(self, core: int, ways: int) -> int:
        """Utility curve: interval hits ``core`` would see with ``ways`` ways.

        This is the UMON prefix sum UCP's lookahead algorithm consumes.
        """
        if ways < 0:
            raise ValueError(f"ways must be >= 0, got {ways}")
        return sum(self.position_hits[core][: min(ways, self.assoc)])

    def sampled_accesses(self, core: int) -> int:
        """Interval accesses by ``core`` that fell in sampled sets."""
        return self.shared_hits[core] + self.shared_misses[core]

    def end_interval(self) -> None:
        """Reset the interval counters in place (keep the shadow arrays warm).

        Zeroing the existing rows instead of allocating fresh lists keeps any
        outstanding references (and the allocator) happy across the thousands
        of intervals a long run completes.
        """
        zero = self._zero_row
        for core, row in enumerate(self.position_hits):
            self._lifetime_hits[core] += sum(row)
            self._lifetime_misses[core] += self.shadow_misses[core]
            row[:] = zero
            self.shadow_misses[core] = 0
            self.shared_hits[core] = 0
            self.shared_misses[core] = 0
